"""The assembled test chip.

:class:`Chip` is the one-stop object the experiments use: it owns the
die netlist (AES plus any subset of the five Trojans), the compiled
simulator, the physical design (floorplan, placement, power grid), both
EM receivers (on-chip spiral sensor and external probe) and the
precomputed per-cell coupling weights that make trace synthesis cheap.

Building a chip is a few seconds of work (dominated by the Neumann
coupling integrals), so experiment drivers construct one chip and run
many acquisition campaigns against it — the same economics as taping
out once and measuring many times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.chip.config import ChipConfig
from repro.crypto.aes_circuit import AesCircuit, build_aes_circuit
from repro.em.probe import ExternalProbe
from repro.em.sensor import OnChipSensor, SensorArray
from repro.errors import ExperimentError
from repro.layout.current_map import (
    CurrentMap,
    build_current_map,
    position_coupling,
)
from repro.layout.floorplan import Floorplan, plan_floorplan
from repro.layout.placement import Placement, place_netlist
from repro.layout.power_grid import PowerGrid, build_power_grid
from repro.layout.technology import Technology, make_tech180
from repro.logic.builder import NetlistBuilder
from repro.logic.netlist import Netlist
from repro.logic.simulator import CompiledNetlist
from repro.logic.stats import NetlistStats, netlist_stats
from repro.power.charges import clock_charges, switching_charges
from repro.trojans.a2 import A2Params, attach_a2
from repro.trojans.base import AnalogTap, HardwareTrojan
from repro.trojans.t1_am import Trojan1Params, attach_trojan1
from repro.trojans.t2_leakage import Trojan2Params, attach_trojan2
from repro.trojans.t3_cdma import Trojan3Params, attach_trojan3
from repro.trojans.t4_power import Trojan4Params, attach_trojan4

#: All Trojans of the paper's test chip, in Table I order.
ALL_TROJANS = ("trojan1", "trojan2", "trojan3", "trojan4", "a2")

_ATTACHERS = {
    "trojan1": (attach_trojan1, Trojan1Params),
    "trojan2": (attach_trojan2, Trojan2Params),
    "trojan3": (attach_trojan3, Trojan3Params),
    "trojan4": (attach_trojan4, Trojan4Params),
    "a2": (attach_a2, A2Params),
}


@dataclass
class Receiver:
    """One EM receiver with its precomputed couplings."""

    name: str
    #: Mutual inductance of each cell's current path to this coil [H],
    #: aligned with the compiled netlist's instance order.
    cell_coupling: np.ndarray
    #: Flux-capture area for environment noise [m²·turns].
    effective_area: float
    #: Coil trace resistance [ohm] (thermal noise).
    resistance: float
    #: True for off-chip receivers (package attenuation applies).
    external: bool
    #: Coupling of each analog tap's current path [H], by tap index.
    tap_coupling: dict[int, float] = field(default_factory=dict)
    #: Coherent package/bondwire-loop coupling [H] added to every
    #: cell's (and tap's) path for off-chip receivers.
    package_coupling: float = 0.0
    #: Physical quantity the receiver senses: inductive receivers see
    #: the *derivative* of the current ("emf"); a shunt-based power
    #: monitor sees the current itself ("current").
    sense: str = "emf"
    #: Channel-group membership: ``None`` for the standalone receivers
    #: (``sensor``/``probe``/``power``, whose acquisition noise keeps
    #: the legacy shared RNG stream for bit-identity) or the group name
    #: (e.g. ``"array"``) for multi-channel members, whose noise comes
    #: from a per-channel derived stream so any subset of the group can
    #: be acquired without changing the other channels' samples.
    group: str | None = None


class Chip:
    """A fully assembled, measurable test chip."""

    def __init__(
        self,
        config: ChipConfig,
        seed: int,
        tech: Technology,
        netlist: Netlist,
        aes: AesCircuit,
        trojans: dict[str, HardwareTrojan],
    ) -> None:
        self.config = config
        self.seed = seed
        self.tech = tech
        self.netlist = netlist
        self.aes = aes
        self.trojans = trojans

        self.sim = CompiledNetlist(netlist)
        self.floorplan: Floorplan = plan_floorplan(
            netlist, tech, utilization=config.utilization
        )
        self.placement: Placement = place_netlist(
            netlist, self.floorplan, seed=config.placement_seed + seed
        )
        self.grid: PowerGrid = build_power_grid(
            self.floorplan,
            tile_len=config.tile_len,
            stripe_pitch=config.stripe_pitch,
            ring_current_fraction=config.ring_current_fraction,
        )
        xs, ys = self.placement.arrays_for(self.sim.instance_names)
        self.current_map: CurrentMap = build_current_map(self.grid, xs, ys)

        self.sensor = OnChipSensor.design(
            self.floorplan.die,
            tech,
            turns=config.sensor_turns,
            trace_width=config.sensor_trace_width,
            edge_margin=config.sensor_edge_margin,
        )
        self.probe = ExternalProbe.langer_rf(
            self.floorplan.die,
            die_top_z=tech.layer(tech.sensor_layer).z,
            standoff=config.probe_standoff,
            radius=config.probe_radius,
            turns=config.probe_turns,
        )

        #: Flat list of all analog taps across Trojans.
        self.taps: list[AnalogTap] = [
            tap for tr in trojans.values() for tap in tr.analog_taps
        ]

        self.q_switch = switching_charges(
            netlist, self.sim.instance_names, tech
        )
        self.q_clock = clock_charges(netlist, self.sim.instance_names, tech)

        self.sensor_array: SensorArray | None = None
        if bool(config.sensor_array_rows) != bool(config.sensor_array_cols):
            raise ExperimentError(
                "sensor_array_rows and sensor_array_cols must both be set "
                f"(or both 0); got {config.sensor_array_rows}x"
                f"{config.sensor_array_cols}"
            )
        if config.sensor_array_rows:
            self.sensor_array = SensorArray.design_grid(
                self.floorplan.die,
                tech,
                rows=config.sensor_array_rows,
                cols=config.sensor_array_cols,
                turns=config.sensor_array_turns,
                trace_width=config.sensor_array_trace_width,
                edge_margin=config.sensor_array_edge_margin,
            )

        self.receivers: dict[str, Receiver] = {}
        #: Channel groups: every receiver name appears in exactly one
        #: group; standalone receivers are singleton groups.
        self.receiver_groups: dict[str, tuple[str, ...]] = {}
        self._install_receiver("sensor", self.sensor, external=False)
        self._install_receiver("probe", self.probe, external=True)
        if config.include_power_monitor:
            self._install_power_monitor()
        if self.sensor_array is not None:
            self._install_channel_group("array", self.sensor_array)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        config: ChipConfig | None = None,
        trojans: Iterable[str] = ALL_TROJANS,
        seed: int = 0,
        tech: Technology | None = None,
        trojan_params: dict | None = None,
    ) -> "Chip":
        """Generate and assemble a chip.

        Parameters
        ----------
        config:
            Physical configuration (defaults to :class:`ChipConfig`).
        trojans:
            Names of Trojans to embed (any subset of
            :data:`ALL_TROJANS`); an empty iterable builds the golden
            AES-only die.
        seed:
            Build seed (placement shuffle, process-variation streams).
        trojan_params:
            Optional per-Trojan parameter overrides, e.g.
            ``{"trojan2": Trojan2Params(depth=64)}``.
        """
        config = config or ChipConfig()
        tech = tech or make_tech180()
        trojan_params = trojan_params or {}
        unknown = set(trojans) - set(ALL_TROJANS)
        if unknown:
            raise ExperimentError(
                f"unknown trojans {sorted(unknown)}; valid: {list(ALL_TROJANS)}"
            )
        b = NetlistBuilder("die")
        aes = build_aes_circuit(b)
        attached: dict[str, HardwareTrojan] = {}
        for name in trojans:
            attach, _params_cls = _ATTACHERS[name]
            attached[name] = attach(b, aes, trojan_params.get(name))
        netlist = b.build()
        return cls(
            config=config,
            seed=seed,
            tech=tech,
            netlist=netlist,
            aes=aes,
            trojans=attached,
        )

    def _install_receiver(self, name: str, coil, external: bool) -> None:
        """Install a standalone (singleton-group) receiver."""
        coupling_seg = coil.coupling(
            self.grid.seg_start,
            self.grid.seg_end,
            n_quad=self.config.coupling_quadrature,
        )
        resistance = coil.resistance() if hasattr(coil, "resistance") else 0.5
        self.receivers[name] = self._receiver_from_coupling(
            name,
            coupling_seg,
            effective_area=coil.effective_area(),
            resistance=resistance,
            external=external,
        )
        self.receiver_groups[name] = (name,)

    def _install_channel_group(self, group: str, array: SensorArray) -> None:
        """Install every coil of *array* as one channel group.

        A single batched :meth:`SensorArray.coupling` pass yields the
        whole ``(coils, segments)`` tensor; each row then goes through
        the exact same cell/tap weighting as a standalone receiver.
        """
        coupling = array.coupling(
            self.grid.seg_start,
            self.grid.seg_end,
            n_quad=self.config.coupling_quadrature,
        )
        names = array.channel_names(group)
        for row, name, coil in zip(coupling, names, array.coils):
            if name in self.receivers:
                raise ExperimentError(f"duplicate receiver name {name!r}")
            self.receivers[name] = self._receiver_from_coupling(
                name,
                row,
                effective_area=coil.effective_area(),
                resistance=coil.resistance(),
                external=False,
                group=group,
            )
        self.receiver_groups[group] = tuple(names)

    def _receiver_from_coupling(
        self,
        name: str,
        coupling_seg: np.ndarray,
        effective_area: float,
        resistance: float,
        external: bool,
        group: str | None = None,
    ) -> Receiver:
        """Per-segment coupling → fully weighted :class:`Receiver`."""
        cell_coupling = self.current_map.cell_weights(coupling_seg)
        tap_coupling: dict[int, float] = {}
        for i, tap in enumerate(self.taps):
            tap_coupling[i] = position_coupling(
                self.grid, coupling_seg, *self._tap_position(tap)
            )
        package_coupling = (
            self.config.package_loop_coupling if external else 0.0
        )
        if package_coupling:
            cell_coupling = cell_coupling + package_coupling
            tap_coupling = {
                i: m + package_coupling for i, m in tap_coupling.items()
            }
        return Receiver(
            name=name,
            cell_coupling=cell_coupling,
            effective_area=effective_area,
            resistance=resistance,
            external=external,
            tap_coupling=tap_coupling,
            package_coupling=package_coupling,
            group=group,
        )

    def _install_power_monitor(self) -> None:
        """Classical power side channel: a shunt on the supply.

        The baseline the paper's related work uses ("global power
        consumption [3]"): every cell's current is summed coherently —
        no spatial information at all — and converted to a voltage by
        the shunt resistance.  Used by the power-vs-EM baseline
        experiment; enable via ``ChipConfig(include_power_monitor=True)``.
        """
        r_shunt = self.config.power_shunt_ohms
        n = self.sim.num_instances
        self.receivers["power"] = Receiver(
            name="power",
            cell_coupling=np.full(n, r_shunt),
            effective_area=0.0,
            resistance=r_shunt,
            external=False,
            tap_coupling={i: r_shunt for i in range(len(self.taps))},
            package_coupling=0.0,
            sense="current",
        )
        self.receiver_groups["power"] = ("power",)

    def _tap_position(self, tap: AnalogTap) -> tuple[float, float]:
        """Physical location of an analog tap's current loop.

        A tap rides a specific net, so it sits at that net's driver
        cell (an A2 pump is soldered onto its victim wire); if the
        driver is unplaced, fall back to the tap group's centroid.
        Spread taps (die-spanning routes) couple from the die centre.
        """
        if tap.spread:
            return self.floorplan.die.center
        anchor_net = tap.position_net if tap.position_net is not None else tap.net
        driver = self.netlist.nets[anchor_net].driver
        if driver is not None and driver in self.placement.positions:
            return self.placement.positions[driver]
        return self.placement.group_centroid(self.netlist, tap.group)

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------
    def stats(self) -> NetlistStats:
        """Gate-count/area statistics (Table I input)."""
        return netlist_stats(self.netlist)

    def describe(self) -> str:
        """Multi-line summary of the physical build."""
        lines = [
            f"chip seed={self.seed}: {self.netlist.num_instances} cells, "
            f"{self.netlist.num_nets} nets",
            self.floorplan.summary(),
            self.sensor.describe(),
            self.probe.describe(),
            f"power grid: {self.grid.n_segments} segments",
        ]
        if self.sensor_array is not None:
            lines.append(self.sensor_array.describe())
        return "\n".join(lines)


def build_protected_chip(
    seed: int = 0,
    config: ChipConfig | None = None,
    trojans: Iterable[str] = ALL_TROJANS,
    trojan_params: dict | None = None,
) -> Chip:
    """Convenience wrapper: the paper's security-enhanced AES test chip
    with all four digital Trojans, the A2 Trojan and the on-chip EM
    sensor."""
    return Chip.build(
        config=config, trojans=trojans, seed=seed, trojan_params=trojan_params
    )
