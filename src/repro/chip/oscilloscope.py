"""Oscilloscope front-end model.

The fabricated-chip measurements of the paper go through a real scope:
finite analog bandwidth, 8-bit quantisation and trigger jitter.  These
are exactly the non-idealities that make Section V's probe SNR
(13.87 dB) land below the Section IV simulation value (17.48 dB), so
the silicon scenario routes every trace through this model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import signal

from repro.errors import MeasurementError
from repro.units import GHZ


@dataclass(frozen=True)
class Oscilloscope:
    """A simple digitiser: Butterworth front end + ADC + trigger jitter."""

    #: -3 dB analog bandwidth [Hz].
    bandwidth: float = 1.0 * GHZ
    #: ADC resolution in bits.
    bits: int = 12
    #: Full-scale headroom over the observed peak when auto-ranging.
    headroom: float = 1.25
    #: RMS trigger jitter in samples.
    jitter_rms_samples: float = 0.5
    #: Filter order.
    order: int = 3

    def digitize(
        self,
        traces: np.ndarray,
        fs: float,
        rng: np.random.Generator,
        full_scale: float | None = None,
    ) -> np.ndarray:
        """Acquire *traces* of shape ``(batch, samples)``.

        Applies, in order: trigger jitter (integer sample roll per
        trace), the analog bandwidth filter, and mid-tread quantisation
        with auto-ranging (shared across the batch unless *full_scale*
        is given — a scope's vertical range is set once per campaign).
        """
        x = np.asarray(traces, dtype=np.float64)
        if x.ndim != 2:
            raise MeasurementError(f"traces must be (batch, samples), got {x.shape}")
        if fs <= 0:
            raise MeasurementError(f"sample rate must be positive, got {fs}")

        if self.jitter_rms_samples > 0:
            shifts = np.round(
                rng.normal(0.0, self.jitter_rms_samples, size=x.shape[0])
            ).astype(int)
            x = np.stack([np.roll(row, s) for row, s in zip(x, shifts)])

        nyquist = 0.5 * fs
        if self.bandwidth < nyquist:
            b, a = signal.butter(self.order, self.bandwidth / nyquist)
            x = signal.lfilter(b, a, x, axis=1)

        if full_scale is None:
            peak = float(np.abs(x).max())
            if peak == 0.0:
                return x
            full_scale = self.headroom * peak
        if full_scale <= 0:
            raise MeasurementError(f"full scale must be positive, got {full_scale}")
        lsb = 2.0 * full_scale / (2**self.bits)
        return np.clip(np.round(x / lsb) * lsb, -full_scale, full_scale)
