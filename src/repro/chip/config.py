"""Chip-level configuration.

A single frozen dataclass collects every knob of the physical build so
experiments can vary one parameter (probe standoff, coil turns, ...)
without touching code.  Defaults model the paper's test chip: 180 nm,
24 MHz core clock (which makes Trojan 1's divide-by-32 carrier exactly
750 kHz), sensor spiral on M6, probe 100 µm above the die.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units import GHZ, MHZ, MM, NS, UM


@dataclass(frozen=True)
class ChipConfig:
    """Physical/build parameters of the modelled test chip."""

    # ----- clocks and sampling ---------------------------------------
    #: Core clock frequency [Hz].
    f_clk: float = 24 * MHZ
    #: Receiver sampling rate [Hz]; must be an integer multiple of f_clk.
    fs: float = 2.4 * GHZ
    #: Base width of a single switching-current pulse [s].
    pulse_width: float = 0.4 * NS
    #: Per-level switching-time stagger [s] (one gate delay).
    gate_delay: float = 0.12 * NS

    # ----- floorplan / power grid ------------------------------------
    #: Placement density target.
    utilization: float = 0.70
    #: Power-grid tile length [m].
    tile_len: float = 25 * UM
    #: Vertical stripe pitch [m].
    stripe_pitch: float = 150 * UM
    #: Fraction of switching current escaping on-chip/package decap to
    #: the pad ring (see :class:`repro.layout.power_grid.PowerGrid`).
    ring_current_fraction: float = 0.0
    #: Placement shuffle seed.
    placement_seed: int = 7

    # ----- on-chip sensor (Fig. 2b) ----------------------------------
    sensor_turns: int = 12
    sensor_trace_width: float = 4.0 * UM
    sensor_edge_margin: float = 10 * UM

    # ----- optional sensor array (programmable coil grid) ------------
    #: Rows/cols of the sub-coil grid; 0x0 (the default) installs no
    #: array, keeping the single-coil build byte-identical to the
    #: paper's chip.  Any non-zero grid adds ``array.r{r}c{c}``
    #: receiver channels alongside ``sensor``/``probe``.
    sensor_array_rows: int = 0
    sensor_array_cols: int = 0
    #: Turns per sub-coil (tiles are small; 12 full-die turns would
    #: violate pitch >= 2w inside one tile).
    sensor_array_turns: int = 3
    sensor_array_trace_width: float = 2.0 * UM
    sensor_array_edge_margin: float = 4.0 * UM

    # ----- external probe (Fig. 2a) ----------------------------------
    probe_standoff: float = 100 * UM
    probe_radius: float = 1.2 * MM
    probe_turns: int = 8

    # ----- EM solver --------------------------------------------------
    #: Gauss–Legendre order of the Neumann coupling integral.
    coupling_quadrature: int = 3
    #: Mutual inductance between the package/bondwire supply loop and
    #: the *external* probe [H].  At a 100 µm standoff the probe mostly
    #: sees the total chip current circulating through the leadframe —
    #: a large loop the on-chip spiral barely couples to.  Every cell's
    #: charge contributes coherently through this path, which is why
    #: the probe's record-level SNR is decent while its view of a small
    #: localised Trojan is poor.
    package_loop_coupling: float = 1.2e-11

    # ----- optional power-monitor baseline ----------------------------
    #: Install a third receiver, "power": a shunt-based supply-current
    #: monitor (the classical power side channel the paper's related
    #: work compares against).
    include_power_monitor: bool = False
    #: Shunt resistance of the power monitor [ohm].
    power_shunt_ohms: float = 1.0

    @property
    def samples_per_cycle(self) -> int:
        """Receiver samples per clock cycle."""
        ratio = self.fs / self.f_clk
        n = int(round(ratio))
        if abs(ratio - n) > 1e-9:
            raise ValueError(
                f"fs ({self.fs}) must be an integer multiple of f_clk "
                f"({self.f_clk})"
            )
        return n

    @property
    def t_clk(self) -> float:
        """Clock period [s]."""
        return 1.0 / self.f_clk
