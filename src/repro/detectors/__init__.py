"""Pluggable detector framework.

Importing this package registers the built-in plugins:

* ``euclidean`` — the paper's golden-fingerprint distance detector;
* ``spectral`` — the golden-spectrum boost check;
* ``spectral_median`` — reference-free population-median outlier
  scoring (arXiv 2601.20163);
* ``persistence`` — reference-free cross-scale score agreement
  (arXiv 2603.16058).

Consumers select detectors by name through the registry — directly
(``create_detector("spectral_median")``) or via the ``REPRO_DETECTOR``
configuration knob (``create_detector()``).  See ``docs/DETECTORS.md``
for the plugin API and the per-detector method summaries.
"""

from repro.detectors.base import (
    Detector,
    DetectorDecision,
    DetectorInfo,
    window_spectra,
)
from repro.detectors.registry import (
    REGISTRY,
    all_detector_infos,
    create_detector,
    detector_from_state,
    detector_names,
    get_detector_class,
    register_detector,
)
from repro.detectors.roc import RocCurve, auc, roc_curve

# Importing the plugin modules is what populates the registry.
from repro.detectors.euclidean import EuclideanPlugin
from repro.detectors.spectral import SpectralPlugin
from repro.detectors.reference_free import (
    CrossScalePersistenceDetector,
    SpectralMedianDetector,
)

__all__ = [
    "Detector",
    "DetectorDecision",
    "DetectorInfo",
    "RocCurve",
    "REGISTRY",
    "all_detector_infos",
    "auc",
    "create_detector",
    "detector_from_state",
    "detector_names",
    "get_detector_class",
    "register_detector",
    "roc_curve",
    "window_spectra",
    "EuclideanPlugin",
    "SpectralPlugin",
    "SpectralMedianDetector",
    "CrossScalePersistenceDetector",
]
