"""Exact threshold-sweep ROC and AUC for detector scores.

Unlike :func:`repro.analysis.metrics.roc_curve` (a fixed 200-point
threshold grid for the paper's SNR figures), this sweep places one
threshold at every distinct score, so the curve — and the trapezoidal
AUC over it — is exact for the given samples.  The decision rule is
"positive if score > threshold", matching every detector's
:meth:`decide`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError


@dataclass(frozen=True)
class RocCurve:
    """Exact ROC sweep: one point per distinct score, plus (1, 1)."""

    #: False-positive rate per threshold, ascending.
    fpr: np.ndarray
    #: True-positive rate per threshold, ascending.
    tpr: np.ndarray
    #: Decision thresholds ("positive if score > t"); the final (1, 1)
    #: point carries ``-inf``.  One entry per curve point.
    thresholds: np.ndarray
    auc: float

    def points(self, cap: int = 129) -> list[dict[str, float]]:
        """JSON-ready ``{"fpr", "tpr"}`` pairs, decimated to ≤ *cap*.

        Endpoints are always kept, so the decimated polyline still
        spans (0, 0) → (1, 1); thresholds are dropped because the
        final ``-inf`` is not JSON-encodable.
        """
        n = self.fpr.size
        if n <= cap:
            idx = np.arange(n)
        else:
            idx = np.unique(np.linspace(0, n - 1, cap).round().astype(int))
        return [
            {"fpr": float(self.fpr[i]), "tpr": float(self.tpr[i])}
            for i in idx
        ]


def roc_curve(neg_scores: np.ndarray, pos_scores: np.ndarray) -> RocCurve:
    """Exact ROC of *pos_scores* (Trojan) against *neg_scores* (golden).

    Thresholds are the distinct scores in descending order; at each,
    rates count scores **strictly above** it, so ties between classes
    move both rates together (the diagonal segment a tie deserves).
    The sweep starts at the maximum score — where nothing is positive,
    pinning (0, 0) — and an explicit (1, 1) point closes the curve.
    """
    neg = np.asarray(neg_scores, dtype=np.float64).ravel()
    pos = np.asarray(pos_scores, dtype=np.float64).ravel()
    if neg.size == 0 or pos.size == 0:
        raise AnalysisError("ROC needs at least one score in each class")
    if not (np.isfinite(neg).all() and np.isfinite(pos).all()):
        raise AnalysisError("ROC scores must be finite")

    thresholds = np.unique(np.concatenate([neg, pos]))[::-1]
    neg_sorted = np.sort(neg)
    pos_sorted = np.sort(pos)
    # Count of scores strictly greater than each threshold.
    fp = neg.size - np.searchsorted(neg_sorted, thresholds, side="right")
    tp = pos.size - np.searchsorted(pos_sorted, thresholds, side="right")
    fpr = np.concatenate([fp / neg.size, [1.0]])
    tpr = np.concatenate([tp / pos.size, [1.0]])
    thresholds = np.concatenate([thresholds, [-np.inf]])
    return RocCurve(
        fpr=fpr,
        tpr=tpr,
        thresholds=thresholds,
        auc=float(np.trapezoid(tpr, fpr)),
    )


def auc(neg_scores: np.ndarray, pos_scores: np.ndarray) -> float:
    """Exact area under the ROC of the two score populations."""
    return roc_curve(neg_scores, pos_scores).auc
