"""Reference-free detectors: no golden chip required.

Both plugins score a window stream against the *population it arrives
in* instead of a golden fingerprint, so they work transductively (fit
on zero windows, score a pooled stream) or against any unlabeled
field population handed to :meth:`fit`:

* :class:`SpectralMedianDetector` — per-window amplitude-spectrum
  outlier scoring against the population **median** spectrum, with
  per-bin robust (MAD) scales.  Welch-style sub-window averaging
  tames the heavy per-bin noise tails of single-window spectra, and a
  causal trailing-mean integrator accumulates the sustained sub-sigma
  per-bin boosts an always-on Trojan such as A2 produces (the paper's
  one-shot spectral check needs 2048-cycle records for the same
  reason).  Follows the self-referencing spectral-consistency idea of
  arXiv 2601.20163.
* :class:`CrossScalePersistenceDetector` — the same robust spectral
  scoring computed at several sub-window lengths, keeping the
  **minimum** across scales: a real always-on Trojan boosts its
  clock-harmonic comb at every analysis scale, while a noise
  excursion rarely survives all of them (multi-window-length score
  agreement, arXiv 2603.16058).

Scoring pipeline (both detectors, per analysis scale):

1. amplitude spectra of each window's sub-windows, averaged (Welch);
2. robust per-bin z against the baseline median/MAD-scale — the
   stored :meth:`fit` baseline when one exists, else the scored
   population's own statistics (transductive);
3. causal trailing-mean smoothing of each bin's z column over
   ``smooth_len`` windows (an expanding mean during warm-up);
4. bin selection by exceedance rate of the **smoothed** columns above
   ``z_cut / sqrt(smooth_len)`` — selection on raw z would pick
   heavy-tailed noise bins over the comb, smoothing Gaussianises the
   tails first;
5. score = mean smoothed z over the ``top_bins`` selected bins.

The scoring is one-sided (emission *boosts*), matching the magnitude-
increase criterion of :func:`repro.analysis.spectral.compare_spectra`;
Trojans that only depress amplitude score below the population and are
out of scope for these detectors (the tournament reports that
honestly as sub-0.5 AUC).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.spectral import amplitude_spectrum
from repro.detectors.base import DetectorDecision, DetectorInfo
from repro.detectors.registry import register_detector
from repro.errors import AnalysisError

#: Floor applied to per-bin MAD scales, relative to the median scale
#: (dead bins would otherwise blow the z of any epsilon excursion).
SCALE_FLOOR_FRACTION = 1e-3

#: Minimum windows for a stored population baseline (medians over
#: fewer rows are too noisy to anchor streaming scores).
MIN_FIT_WINDOWS = 8


def _robust_stats(spectra: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-bin median and floored MAD scale of a spectrum population."""
    med = np.median(spectra, axis=0)
    mad = np.median(np.abs(spectra - med[None, :]), axis=0)
    scale = 1.4826 * mad
    floor = max(float(np.median(scale)) * SCALE_FLOOR_FRACTION, 1e-30)
    return med, np.maximum(scale, floor)


def _causal_smooth(z: np.ndarray, length: int) -> np.ndarray:
    """Trailing mean of each column over *length* rows (causal).

    Row *i* averages rows ``max(0, i+1-length) .. i`` — an expanding
    mean during warm-up, a fixed-length trailing mean afterwards.
    """
    csum = np.vstack([np.zeros((1, z.shape[1])), np.cumsum(z, axis=0)])
    idx = np.arange(z.shape[0])
    lo = np.maximum(idx + 1 - length, 0)
    return (csum[idx + 1] - csum[lo]) / (idx + 1 - lo)[:, None]


class _RobustSpectralDetector:
    """Shared machinery of the two reference-free plugins."""

    #: Robust per-bin scoring needs the population statistics of the
    #: whole stream; the dense batched engine's fingerprint-distance
    #: path cannot express that.
    supports_batched = False

    def __init__(
        self,
        scales: tuple[int, ...],
        smooth_len: int = 32,
        top_bins: int = 8,
        z_cut: float = 2.0,
        flag_sigma: float = 3.0,
        alarm_fraction: float = 0.05,
    ) -> None:
        scales = tuple(int(s) for s in scales)
        if not scales or any(s < 1 for s in scales):
            raise AnalysisError(
                f"scales must be positive integers, got {scales}"
            )
        if smooth_len < 1:
            raise AnalysisError(f"smooth_len must be >= 1, got {smooth_len}")
        if top_bins < 1:
            raise AnalysisError(f"top_bins must be >= 1, got {top_bins}")
        if z_cut <= 0 or flag_sigma <= 0:
            raise AnalysisError("z_cut and flag_sigma must be > 0")
        if not 0.0 < alarm_fraction < 1.0:
            raise AnalysisError(
                f"alarm_fraction must be in (0, 1), got {alarm_fraction}"
            )
        self.scales = scales
        self.smooth_len = int(smooth_len)
        self.top_bins = int(top_bins)
        self.z_cut = float(z_cut)
        self.flag_sigma = float(flag_sigma)
        self.alarm_fraction = float(alarm_fraction)
        #: Per-scale ``(median, scale)`` baselines; ``None`` until a
        #: non-empty population is fitted (transductive mode).
        self._baseline: list[tuple[np.ndarray, np.ndarray]] | None = None
        self._n_fit: int | None = None
        self._d_rms: float | None = None

    # -- features ------------------------------------------------------
    def _welch(self, traces: np.ndarray, k: int) -> np.ndarray:
        """Mean amplitude spectrum of each window's *k* sub-windows."""
        x = np.asarray(traces, dtype=np.float64)
        if x.ndim != 2:
            raise AnalysisError(f"expected 2-D windows, got shape {x.shape}")
        n, width = x.shape
        sub = width // k
        if sub < 8:
            raise AnalysisError(
                f"{width}-sample windows are too short for {k} sub-windows"
            )
        parts = x[:, : k * sub].reshape(n * k, sub)
        amps = amplitude_spectrum(parts, fs=1.0, average=False).amplitude
        # Skip the DC bin: mean level is not a spectral signature.
        return amps.reshape(n, k, -1).mean(axis=1)[:, 1:]

    def features(self, traces: np.ndarray) -> np.ndarray:
        """Primary-scale Welch spectra (what the monitor averages)."""
        return self._welch(traces, self.scales[0])

    @property
    def fingerprint(self) -> np.ndarray:
        """Baseline median spectrum at the primary scale (read-only)."""
        if self._baseline is None:
            raise AnalysisError("detector used before fit()")
        view = self._baseline[0][0].view()
        view.flags.writeable = False
        return view

    # -- fit -----------------------------------------------------------
    def fit(self, traces: np.ndarray):
        """Characterise an **unlabeled** window population.

        No golden labelling is assumed: *traces* is whatever the
        deployment can observe.  An empty array selects transductive
        mode — :meth:`score` then anchors each batch to its own
        population statistics, so the detector never sees a reference
        window at all.
        """
        x = np.asarray(traces, dtype=np.float64)
        if x.size == 0:
            self._baseline = None
            self._n_fit = None
            self._d_rms = None
            return self
        if x.ndim != 2 or x.shape[0] < MIN_FIT_WINDOWS:
            raise AnalysisError(
                f"need at least {MIN_FIT_WINDOWS} windows to fit a "
                f"population baseline, got shape {x.shape}"
            )
        self._baseline = [
            _robust_stats(self._welch(x, k)) for k in self.scales
        ]
        self._n_fit = int(x.shape[0])
        # Streaming calibration: RMS spectral distance of the fit
        # population to its own median, the analogue of the golden
        # detector's per-trace distance RMS.
        deltas = self._welch(x, self.scales[0]) - self._baseline[0][0][None, :]
        self._d_rms = float(np.sqrt(np.mean(np.sum(deltas**2, axis=1))))
        return self

    # -- scoring -------------------------------------------------------
    def _scale_scores(self, traces: np.ndarray, index: int) -> np.ndarray:
        spectra = self._welch(traces, self.scales[index])
        if self._baseline is not None:
            med, scale = self._baseline[index]
            if med.shape != spectra.shape[1:]:
                raise AnalysisError(
                    "window length differs from the fitted population"
                )
        else:
            med, scale = _robust_stats(spectra)
        z = (spectra - med[None, :]) / scale[None, :]
        smoothed = _causal_smooth(z, self.smooth_len)
        cut = self.z_cut / np.sqrt(self.smooth_len)
        rate = (smoothed > cut).mean(axis=0)
        top = min(self.top_bins, rate.shape[0])
        selected = np.argsort(-rate)[:top]
        return smoothed[:, selected].mean(axis=1)

    def score(self, traces: np.ndarray) -> np.ndarray:
        """Per-window anomaly score, in smoothed robust-z units."""
        per_scale = [
            self._scale_scores(traces, i) for i in range(len(self.scales))
        ]
        if len(per_scale) == 1:
            return per_scale[0]
        return np.min(np.stack(per_scale), axis=0)

    def decide(self, scores: np.ndarray) -> DetectorDecision:
        """Self-calibrating verdict on a score stream.

        A window is flagged when its score sits ``flag_sigma`` robust
        sigmas above the stream median (clean windows dominate any
        realistic stream, so the median anchors to them); the stream
        is flagged when more than ``alarm_fraction`` of windows
        exceed.  Golden streams stay well under the fraction even with
        the smoothing-induced autocorrelation.
        """
        s = np.asarray(scores, dtype=np.float64).ravel()
        if s.size == 0:
            return DetectorDecision(
                detected=False, threshold=0.0, exceed_fraction=0.0
            )
        med = float(np.median(s))
        sigma = 1.4826 * float(np.median(np.abs(s - med)))
        threshold = med + self.flag_sigma * max(sigma, 1e-30)
        exceed = float((s > threshold).mean())
        return DetectorDecision(
            detected=exceed > self.alarm_fraction,
            threshold=threshold,
            exceed_fraction=exceed,
        )

    # -- streaming integration ----------------------------------------
    def streaming_threshold(self, window: int) -> float:
        """Three-sigma envelope for a W-window sliding spectral mean.

        Mirrors the monitor's analytic H0 threshold with the fitted
        population playing the reference role: a W-window mean
        spectrum fluctuates around the median at
        ``d_rms * sqrt(1/W + 1/n_fit)``.
        """
        if self._d_rms is None or self._n_fit is None:
            raise AnalysisError(
                "streaming threshold needs a fitted population baseline"
            )
        if window < 1:
            raise AnalysisError(f"window must be >= 1, got {window}")
        return float(
            3.0 * self._d_rms * np.sqrt(1.0 / window + 1.0 / self._n_fit)
        )

    def floor_threshold(self, window: int) -> float:
        """Fleet-session threshold; same envelope as streaming."""
        return self.streaming_threshold(window)

    # -- state round trip ----------------------------------------------
    def state_dict(self) -> dict:
        """JSON-encodable fitted state (floats survive exactly)."""
        return {
            "scales": list(self.scales),
            "smooth_len": self.smooth_len,
            "top_bins": self.top_bins,
            "z_cut": self.z_cut,
            "flag_sigma": self.flag_sigma,
            "alarm_fraction": self.alarm_fraction,
            "baseline": (
                None
                if self._baseline is None
                else [
                    {"median": med.tolist(), "scale": scale.tolist()}
                    for med, scale in self._baseline
                ]
            ),
            "n_fit": self._n_fit,
            "d_rms": self._d_rms,
        }

    def _load_state(self, state: dict) -> None:
        if state["baseline"] is None:
            self._baseline = None
        else:
            self._baseline = [
                (
                    np.asarray(entry["median"], dtype=np.float64),
                    np.asarray(entry["scale"], dtype=np.float64),
                )
                for entry in state["baseline"]
            ]
        self._n_fit = (
            int(state["n_fit"]) if state["n_fit"] is not None else None
        )
        self._d_rms = (
            float(state["d_rms"]) if state["d_rms"] is not None else None
        )

    @classmethod
    def _common_kwargs(cls, state: dict) -> dict:
        return dict(
            smooth_len=int(state["smooth_len"]),
            top_bins=int(state["top_bins"]),
            z_cut=float(state["z_cut"]),
            flag_sigma=float(state["flag_sigma"]),
            alarm_fraction=float(state["alarm_fraction"]),
        )


@register_detector
class SpectralMedianDetector(_RobustSpectralDetector):
    """Population-median spectral outlier scoring (reference-free)."""

    info = DetectorInfo(
        name="spectral_median",
        summary=(
            "Welch-averaged window spectra scored against the "
            "population median with robust per-bin scales; causal "
            "integration accumulates sustained comb boosts"
        ),
        reference_free=True,
        paper_ref="arXiv 2601.20163",
    )

    def __init__(self, welch_k: int = 4, **kwargs) -> None:
        super().__init__(scales=(int(welch_k),), **kwargs)
        self.welch_k = int(welch_k)

    def state_dict(self) -> dict:
        state = super().state_dict()
        del state["scales"]
        state["welch_k"] = self.welch_k
        return state

    @classmethod
    def from_state(cls, state: dict) -> "SpectralMedianDetector":
        det = cls(
            welch_k=int(state["welch_k"]), **cls._common_kwargs(state)
        )
        det._load_state(state)
        return det


@register_detector
class CrossScalePersistenceDetector(_RobustSpectralDetector):
    """Multi-window-length score agreement (reference-free)."""

    info = DetectorInfo(
        name="persistence",
        summary=(
            "Robust spectral scores at several sub-window lengths, "
            "keeping the minimum: an always-on Trojan persists across "
            "every analysis scale, noise excursions do not"
        ),
        reference_free=True,
        paper_ref="arXiv 2603.16058",
    )

    def __init__(self, scales: tuple[int, ...] = (1, 2, 4), **kwargs) -> None:
        super().__init__(scales=tuple(scales), **kwargs)

    @classmethod
    def from_state(cls, state: dict) -> "CrossScalePersistenceDetector":
        det = cls(
            scales=tuple(int(s) for s in state["scales"]),
            **cls._common_kwargs(state),
        )
        det._load_state(state)
        return det
