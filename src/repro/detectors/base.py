"""Detector plugin protocol and shared feature helpers.

Every registered detector follows one life cycle:

``fit(traces)``
    Learn whatever reference the method needs.  Golden-based detectors
    require Trojan-free traces here; reference-free detectors accept an
    *unlabeled* population for streaming calibration — or an empty
    array for fully transductive use, where :meth:`score` calibrates
    itself from the scored population alone.
``score(traces) -> per-window anomaly scores``
    One float per trace window; larger means more anomalous.
``decide(scores) -> DetectorDecision``
    Turn a population of scores into a verdict at the detector's
    native operating point.
``state_dict() / from_state(state)``
    JSON-primitive round trip of the fitted state, bit-identical on
    restore (scores on any trace set equal before/after).

Detectors that additionally expose ``features`` / ``fingerprint`` /
``streaming_threshold`` / ``floor_threshold`` plug into the streaming
:class:`~repro.framework.monitor.RuntimeMonitor` and the fleet
sessions; ``supports_batched`` gates the dense
:class:`~repro.framework.batched.BatchedFleetMonitor` engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.analysis.spectral import amplitude_spectrum
from repro.errors import AnalysisError


@dataclass(frozen=True)
class DetectorInfo:
    """Registry card for one detector plugin."""

    name: str
    summary: str
    #: True when the method never needs Trojan-free traces.
    reference_free: bool
    paper_ref: str = ""

    @property
    def basis(self) -> str:
        return "reference-free" if self.reference_free else "golden-based"


@dataclass(frozen=True)
class DetectorDecision:
    """Population verdict at a detector's native operating point."""

    detected: bool
    threshold: float
    #: Fraction of scored windows above the threshold.
    exceed_fraction: float


@runtime_checkable
class Detector(Protocol):
    """Structural type every registered detector satisfies."""

    info: DetectorInfo
    supports_batched: bool

    def fit(self, traces: np.ndarray) -> "Detector": ...

    def score(self, traces: np.ndarray) -> np.ndarray: ...

    def decide(self, scores: np.ndarray) -> DetectorDecision: ...

    def state_dict(self) -> dict: ...

    @classmethod
    def from_state(cls, state: dict) -> "Detector": ...


def window_spectra(traces: np.ndarray) -> np.ndarray:
    """Per-window Hann amplitude spectra, one row per trace window.

    Normalised frequency axis (``fs=1``): callers compare windows to
    each other, never to absolute hertz, so the grid only needs to be
    consistent across windows of equal length.
    """
    x = np.asarray(traces, dtype=np.float64)
    if x.ndim != 2:
        raise AnalysisError(f"traces must be (n, samples), got {x.shape}")
    return amplitude_spectrum(x, fs=1.0, average=False).amplitude


def readonly_view(arr: np.ndarray) -> np.ndarray:
    """Read-only view of *arr* (fingerprints must not be mutated)."""
    view = arr.view()
    view.flags.writeable = False
    return view
