"""String-keyed detector registry, in the style of the experiment
registry (``experiments/registry.py``).

Plugins self-register at import time via :func:`register_detector`;
consumers resolve them by name — ``create_detector()`` with no
arguments honours the ``REPRO_DETECTOR`` knob
(:attr:`~repro.config.ReproConfig.detector`), so the framework and the
fleet select detectors by configuration instead of importing
``analysis.euclidean`` directly.
"""

from __future__ import annotations

from repro.detectors.base import Detector, DetectorInfo
from repro.errors import AnalysisError

#: name -> detector class, sorted views exposed via the helpers below.
REGISTRY: dict[str, type] = {}


def register_detector(cls: type) -> type:
    """Class decorator: add *cls* to the registry under its info name."""
    info = getattr(cls, "info", None)
    if not isinstance(info, DetectorInfo):
        raise AnalysisError(
            f"{cls.__name__} must define a DetectorInfo class attribute"
        )
    if info.name in REGISTRY:
        raise AnalysisError(f"duplicate detector name {info.name!r}")
    REGISTRY[info.name] = cls
    return cls


def detector_names() -> tuple[str, ...]:
    """All registered names, sorted."""
    return tuple(sorted(REGISTRY))


def all_detector_infos() -> tuple[DetectorInfo, ...]:
    """Registry cards of every detector, sorted by name."""
    return tuple(REGISTRY[name].info for name in sorted(REGISTRY))


def get_detector_class(name: str) -> type:
    """Resolve a registered class, with a helpful unknown-name error."""
    try:
        return REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(REGISTRY)) or "<none>"
        raise AnalysisError(
            f"unknown detector {name!r}; registered: {known}"
        ) from None


def create_detector(name: str | None = None, **kwargs) -> Detector:
    """Instantiate a detector by name.

    *name* defaults to the active configuration's ``detector`` field
    (the ``REPRO_DETECTOR`` environment knob).  Keyword arguments are
    forwarded to the plugin constructor.
    """
    if name is None:
        from repro.config import active_config

        name = active_config().detector
    return get_detector_class(name)(**kwargs)


def detector_from_state(name: str, state: dict) -> Detector:
    """Rebuild a fitted detector of the named class from its state."""
    return get_detector_class(name).from_state(state)
