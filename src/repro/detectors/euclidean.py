"""Registry plugin for the paper's Euclidean-distance detector.

A thin subclass of :class:`repro.analysis.euclidean.EuclideanDetector`:
every numeric path (fit statistics, features, distances, state round
trip) is inherited unchanged, so selecting ``"euclidean"`` through the
registry is bit-identical to constructing the analysis class directly.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.euclidean import EuclideanDetector
from repro.detectors.base import DetectorDecision, DetectorInfo
from repro.detectors.registry import register_detector
from repro.errors import AnalysisError


@register_detector
class EuclideanPlugin(EuclideanDetector):
    """Golden-fingerprint Euclidean distance with the Eq. (1) threshold."""

    info = DetectorInfo(
        name="euclidean",
        summary=(
            "Per-window L2 distance to the golden mean fingerprint in "
            "unit-norm trace space; Eq. (1) max intra-golden threshold"
        ),
        reference_free=False,
        paper_ref="Section IV-C, Eq. (1)",
    )
    #: Feature extraction is row-independent (unless PCA is fitted), so
    #: the dense batched fleet engine can score this detector.
    supports_batched = True

    def score(self, traces: np.ndarray) -> np.ndarray:
        """Per-window anomaly score = distance to the fingerprint."""
        return self.distances(traces)

    def decide(self, scores: np.ndarray) -> DetectorDecision:
        """Verdict at the Eq. (1) operating point: the population is
        flagged when most windows exceed the max intra-golden
        distance."""
        if self.threshold is None:
            raise AnalysisError("detector used before fit()")
        s = np.asarray(scores, dtype=np.float64)
        exceed = float((s > self.threshold).mean()) if s.size else 0.0
        return DetectorDecision(
            detected=exceed > 0.5,
            threshold=float(self.threshold),
            exceed_fraction=exceed,
        )
