"""Registry plugin for the golden-based spectral check (Section IV-D).

Reuses the Euclidean machinery in *spectrum* feature space: features
are per-window Hann amplitude spectra instead of unit-norm trace
shapes, and the golden statistics (fingerprint = mean golden spectrum,
Eq. (1)-style max intra-golden spectral distance, bootstrap separation
floor) come from the shared
:meth:`~repro.analysis.euclidean.EuclideanDetector._fit_stats` path.
On top of that it keeps the paper's boost rule: a window whose
amplitude exceeds ``boost_ratio`` × the golden spectrum in any bin is
anomalous, mirroring :func:`repro.analysis.spectral.compare_spectra`'s
magnitude-increase criterion per window.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.euclidean import EuclideanDetector
from repro.detectors.base import (
    DetectorDecision,
    DetectorInfo,
    window_spectra,
)
from repro.detectors.registry import register_detector
from repro.errors import AnalysisError


@register_detector
class SpectralPlugin(EuclideanDetector):
    """Golden-spectrum boost detector over per-window spectra."""

    info = DetectorInfo(
        name="spectral",
        summary=(
            "Per-window amplitude spectrum vs the golden mean spectrum; "
            "flags boost_ratio amplitude increases in any bin"
        ),
        reference_free=False,
        paper_ref="Section IV-D",
    )
    #: Spectrum extraction is row-independent, but the batched fleet
    #: engine's running-sum scoring assumes unit-norm trace features;
    #: spectral windows take the sequential path.
    supports_batched = False

    def __init__(
        self,
        boost_ratio: float = 1.6,
        n_bootstrap: int = 32,
        seed: int = 0,
    ) -> None:
        super().__init__(
            n_components=None, n_bootstrap=n_bootstrap, seed=seed
        )
        if boost_ratio <= 1.0:
            raise AnalysisError(f"boost_ratio must exceed 1, got {boost_ratio}")
        self.boost_ratio = float(boost_ratio)
        #: Calibrated decision point: a single noisy window's max-bin
        #: boost routinely exceeds the record-level ``boost_ratio``,
        #: so the operating point is the larger of the configured
        #: ratio and the max boost the golden fit windows themselves
        #: reach — the Eq. (1) max-intra-golden idea in ratio space.
        self.boost_threshold: float | None = None

    def features(self, traces: np.ndarray) -> np.ndarray:
        """Per-window amplitude spectra (normalised frequency axis)."""
        return window_spectra(traces)

    def fit(self, golden_traces: np.ndarray) -> "SpectralPlugin":
        x = np.asarray(golden_traces, dtype=np.float64)
        if x.ndim != 2 or x.shape[0] < 2:
            raise AnalysisError("need at least two golden traces to fit")
        feats = self.features(x)
        self._fit_stats(feats)
        self.boost_threshold = max(
            self.boost_ratio, float(self._boost_scores(feats).max())
        )
        return self

    def _boost_scores(self, spectra: np.ndarray) -> np.ndarray:
        """Max per-bin amplitude ratio of each window over the golden
        mean spectrum."""
        floor = np.maximum(self.fingerprint, 1e-30)
        return (spectra / floor[None, :]).max(axis=1)

    def score(self, traces: np.ndarray) -> np.ndarray:
        """Per-window anomaly score = max boost over the golden
        spectrum (1 ≈ golden, ``boost_ratio`` = paper's flag point)."""
        if self._fingerprint is None:
            raise AnalysisError("detector used before fit()")
        return self._boost_scores(self.features(traces))

    def decide(self, scores: np.ndarray) -> DetectorDecision:
        if self.boost_threshold is None:
            raise AnalysisError("detector used before fit()")
        s = np.asarray(scores, dtype=np.float64)
        exceed = float((s > self.boost_threshold).mean()) if s.size else 0.0
        return DetectorDecision(
            detected=exceed > 0.5,
            threshold=self.boost_threshold,
            exceed_fraction=exceed,
        )

    # -- state round trip ------------------------------------------------
    def state_dict(self) -> dict:
        state = super().state_dict()
        del state["n_components"], state["pca"]
        state["boost_ratio"] = self.boost_ratio
        state["boost_threshold"] = self.boost_threshold
        return state

    @classmethod
    def from_state(cls, state: dict) -> "SpectralPlugin":
        det = cls(
            boost_ratio=state["boost_ratio"],
            n_bootstrap=state["n_bootstrap"],
            seed=state["seed"],
        )
        det.boost_threshold = (
            float(state["boost_threshold"])
            if state["boost_threshold"] is not None
            else None
        )
        det.threshold = float(state["threshold"])
        det.separation_floor = (
            float(state["separation_floor"])
            if state["separation_floor"] is not None
            else None
        )
        det._fingerprint = np.asarray(state["fingerprint"], dtype=np.float64)
        det.golden_distances = np.asarray(
            state["golden_distances"], dtype=np.float64
        )
        return det
