"""Deterministic random-number management.

Every stochastic component in the library (noise injection, process
variation, plaintext generation, ...) draws from a
:class:`numpy.random.Generator` obtained through :func:`derive`, which
hashes a parent seed together with a textual *role*.  Two benefits:

* experiments are exactly reproducible from a single integer seed, and
* independent subsystems get statistically independent streams even
  though they share that one seed (no accidental stream reuse).
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Seed used by experiment drivers when the caller does not supply one.
DEFAULT_SEED = 20200720  # DAC 2020 week, a fixed arbitrary constant.


def derive(seed: int, role: str) -> np.random.Generator:
    """Return an independent generator for *role* derived from *seed*.

    Parameters
    ----------
    seed:
        Parent integer seed (any Python int, may be large).
    role:
        Free-form label naming the consumer, e.g. ``"env-noise"`` or
        ``"plaintexts/trojan1"``.  Different labels yield independent
        streams; the same ``(seed, role)`` pair always yields the same
        stream.
    """
    digest = hashlib.sha256(f"{seed}:{role}".encode("utf-8")).digest()
    child_seed = int.from_bytes(digest[:8], "little")
    return np.random.default_rng(child_seed)


def spawn_seeds(seed: int, role: str, count: int) -> list[int]:
    """Derive *count* independent integer seeds for per-item streams."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    rng = derive(seed, role)
    return [int(s) for s in rng.integers(0, 2**63 - 1, size=count)]
