"""Deprecated alias of :mod:`repro.obs.metrics`.

The metrics registry was promoted out of the fleet service into the
shared :mod:`repro.obs` package so every runtime layer can report
through it.  Importing this module keeps working but emits one
``DeprecationWarning``; ``from repro.fleet import MetricsRegistry``
stays warning-free via the package re-export.
"""

from __future__ import annotations

import warnings

from repro.obs.metrics import (  # noqa: F401 - re-exported API
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SUMMARY_PERCENTILES,
    format_snapshot,
)

warnings.warn(
    "repro.fleet.metrics moved to repro.obs.metrics; "
    "update imports (this alias will be removed)",
    DeprecationWarning,
    stacklevel=2,
)
