"""Fleet scheduler: bounded per-chip queues, backpressure, fan-out.

The ingestor between the per-chip trace feeds and their monitor
sessions.  Each chip owns one bounded FIFO; the scheduler produces
arrival batches round-robin across the fleet and drains each queue
through its session.  When a queue is full the **backpressure policy**
decides, explicitly:

* ``"block"`` — the producer waits for the consumer (serially: the
  oldest batch is drained through the session before the new one is
  admitted).  Nothing is ever lost.
* ``"drop_oldest"`` — the oldest queued batch is evicted to admit the
  new one.  Every eviction is counted per chip, journalled as a
  ``drop`` event with the lost sequence numbers, and surfaced in the
  fleet report — **never silent**.

Worker fan-out follows the :mod:`repro.experiments.parallel`
conventions: the effective worker count comes from
:func:`~repro.experiments.parallel.resolve_workers` (argument →
``REPRO_WORKERS`` → CPU count), is clamped to the chip count, and
auto-degrades to the deterministic serial loop on single-CPU hosts
(``REPRO_FORCE_POOL=1`` overrides, as for the campaign pool).  Workers
are threads, not processes — sessions are stateful and ingestion is
NumPy-bound, so the GIL is released where it matters; each worker owns
a fixed partition of the chips, which keeps per-chip ordering exact
and makes the threaded run alarm-identical to the serial one under the
``block`` policy.

Checkpoint/resume (serial mode): :meth:`FleetScheduler.run` with
``max_ticks`` stops at a tick boundary, :meth:`state_dict` captures
the sessions plus the production/queue bookkeeping, and
:meth:`from_state` + a second :meth:`run` over identically rebuilt
feeds continues **bit-identically** — same alarms, same journal tail.

Scoring runs in one of two modes (``REPRO_FLEET_SCORING`` or the
``scoring`` argument): ``batched`` (default) drains each tick's
arrivals through one :class:`~repro.framework.batched.
BatchedFleetMonitor` — one feature-extraction call and one row-norm
for the whole fleet — while ``sequential`` keeps the per-session
Python loop.  The two modes are bit-identical (alarms, journal,
checkpoints); batched is simply faster the more chips share a tick.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.config import FLEET_SCORING_MODES, active_config
from repro.errors import ExperimentError
from repro.experiments.parallel import resolve_workers
from repro.fleet.feed import TraceFeed, WindowBatch
from repro.obs.journal import EventJournal
from repro.obs.metrics import MetricsRegistry
from repro.fleet.session import MonitorSession
from repro.framework.batched import BatchedFleetMonitor
from repro.framework.monitor import AlarmEvent

#: Supported backpressure policies.
POLICIES = ("block", "drop_oldest")


def journal_queue_drop(
    journal: EventJournal,
    metrics: MetricsRegistry,
    chip_id: str,
    batch_index: int,
    seqs: tuple[int, ...],
) -> None:
    """Account one ``drop_oldest`` queue eviction — loudly.

    Shared by the classic scheduler and the sharded ingest front-end
    (:mod:`repro.fleet.ingest`) so both emit byte-identical ``drop``
    events and the same counters for the same eviction.
    """
    metrics.counter("fleet.queue.dropped_windows").inc(len(seqs))
    metrics.counter(f"chip.{chip_id}.queue_dropped").inc(len(seqs))
    journal.record(
        "drop", chip=chip_id, batch=batch_index, seqs=list(seqs)
    )


def chip_report_from(
    chip_id: str,
    feed: TraceFeed,
    session: MonitorSession,
    dropped_batches: list[int],
    metrics: MetricsRegistry,
) -> ChipReport:
    """Build one chip's :class:`ChipReport` from its run artifacts.

    Factored out of the scheduler so the sharded topology produces the
    exact same per-chip report rows from merged shard state.
    """
    dropped_windows = sum(
        len(feed.seqs_at(i)) for i in dropped_batches
    )
    return ChipReport(
        chip_id=chip_id,
        windows_delivered=feed.n_delivered,
        windows_ingested=session.windows_ingested,
        feed_dropped=len(feed.dropped_seqs),
        feed_duplicated=feed.duplicated,
        feed_reordered=feed.reordered,
        queue_dropped_batches=len(dropped_batches),
        queue_dropped_windows=dropped_windows,
        gaps=session.gaps,
        out_of_order=session.out_of_order,
        scoring_p99_s=metrics.histogram(
            f"chip.{chip_id}.scoring.seconds"
        ).percentile(99.0),
        alarms=list(session.monitor.alarms),
    )


class BoundedQueue:
    """Thread-safe bounded FIFO with an explicit overflow policy."""

    def __init__(self, depth: int, policy: str) -> None:
        if depth < 1:
            raise ExperimentError(f"queue depth must be >= 1, got {depth}")
        if policy not in POLICIES:
            raise ExperimentError(
                f"unknown backpressure policy {policy!r}; "
                f"expected one of {POLICIES}"
            )
        self.depth = depth
        self.policy = policy
        self._items: deque = deque()
        self._cond = threading.Condition()
        self._closed = False
        self.dropped: list[WindowBatch] = []
        self.high_water = 0

    def put(self, item: WindowBatch) -> WindowBatch | None:
        """Enqueue; returns the batch evicted by ``drop_oldest`` (if any).

        Under the ``block`` policy this waits until a consumer frees a
        slot.
        """
        with self._cond:
            if self.policy == "block":
                while len(self._items) >= self.depth:
                    self._cond.wait()
                evicted = None
            else:
                evicted = (
                    self._items.popleft()
                    if len(self._items) >= self.depth
                    else None
                )
                if evicted is not None:
                    self.dropped.append(evicted)
            self._items.append(item)
            self.high_water = max(self.high_water, len(self._items))
            self._cond.notify_all()
            return evicted

    def get_nowait(self) -> WindowBatch | None:
        with self._cond:
            if not self._items:
                return None
            item = self._items.popleft()
            self._cond.notify_all()
            return item

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def finished(self) -> bool:
        """Closed and fully drained."""
        with self._cond:
            return self._closed and not self._items

    def __len__(self) -> int:
        return len(self._items)


@dataclass
class ChipReport:
    """One chip's fleet-run outcome."""

    chip_id: str
    windows_delivered: int
    windows_ingested: int
    #: Windows the link lost (feed fault injection) — explicit counts.
    feed_dropped: int
    feed_duplicated: int
    feed_reordered: int
    #: Batches/windows evicted by the ``drop_oldest`` queue policy.
    queue_dropped_batches: int
    queue_dropped_windows: int
    #: Sequence anomalies the session observed.
    gaps: int
    out_of_order: int
    #: p99 latency of this chip's scoring stage (features + separation)
    #: in seconds.  Under batched scoring every chip in a tick observes
    #: the shared tick duration.
    scoring_p99_s: float = 0.0
    alarms: list[AlarmEvent] = field(default_factory=list)

    @property
    def time_alarm(self) -> bool:
        return bool(self.alarms)

    @property
    def first_alarm_window(self) -> int | None:
        return self.alarms[0].window_index if self.alarms else None


@dataclass
class FleetResult:
    """Outcome of one scheduler run."""

    reports: dict[str, ChipReport]
    complete: bool
    ticks: int
    elapsed_seconds: float
    metrics: dict
    journal_path: str | None = None

    @property
    def windows_ingested(self) -> int:
        return sum(r.windows_ingested for r in self.reports.values())

    @property
    def throughput(self) -> float:
        """Ingestion rate over the whole fleet [windows/s]."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.windows_ingested / self.elapsed_seconds

    def format(self) -> str:
        lines = [
            f"fleet run: {len(self.reports)} chips, "
            f"{self.windows_ingested} windows in "
            f"{self.elapsed_seconds:.2f}s "
            f"({self.throughput:.0f} windows/s)"
            + ("" if self.complete else "  [PARTIAL — checkpointed]")
        ]
        for chip_id, r in self.reports.items():
            status = (
                f"ALARM @ window {r.first_alarm_window}"
                if r.time_alarm
                else "quiet"
            )
            lines.append(
                f"  {chip_id:<9} {status:<22} "
                f"ingested {r.windows_ingested}/{r.windows_delivered}, "
                f"link drops {r.feed_dropped}, dup {r.feed_duplicated}, "
                f"reordered {r.feed_reordered}, "
                f"queue drops {r.queue_dropped_windows}, "
                f"gaps {r.gaps}, ooo {r.out_of_order}, "
                f"score p99 {r.scoring_p99_s * 1e6:.0f}us"
            )
        return "\n".join(lines)


class FleetScheduler:
    """Streams many chips' feeds through their monitor sessions."""

    def __init__(
        self,
        sessions: list[MonitorSession],
        queue_depth: int = 8,
        policy: str = "block",
        workers: int | None = None,
        consume_every: int = 1,
        journal: EventJournal | None = None,
        metrics: MetricsRegistry | None = None,
        scoring: str | None = None,
    ) -> None:
        """
        Parameters
        ----------
        sessions:
            One per chip; their order fixes the round-robin order.
        queue_depth:
            Bounded per-chip queue capacity, in batches.
        policy:
            Backpressure policy, ``"block"`` or ``"drop_oldest"``.
        workers:
            Ingestion fan-out; resolved through the
            :mod:`repro.experiments.parallel` conventions.  ``1``
            forces the deterministic serial loop (required for
            checkpointing).
        consume_every:
            Serial-mode consumer pacing: sessions drain one batch per
            chip every *consume_every* production ticks.  ``1`` keeps
            consumers in lock-step with producers; larger values
            emulate a slow consumer and exercise the backpressure
            policy deterministically.  Ignored by the threaded path.
        journal, metrics:
            Shared sinks; default to the first session's.
        scoring:
            ``"batched"`` or ``"sequential"``; ``None`` (default)
            resolves ``REPRO_FLEET_SCORING`` through the active
            :class:`~repro.config.ReproConfig` at :meth:`run` time.
            Both modes raise bit-identical alarms.
        """
        if not sessions:
            raise ExperimentError("fleet needs at least one session")
        ids = [s.chip_id for s in sessions]
        if len(set(ids)) != len(ids):
            raise ExperimentError(f"chip ids must be unique, got {ids}")
        if policy not in POLICIES:
            raise ExperimentError(
                f"unknown backpressure policy {policy!r}; "
                f"expected one of {POLICIES}"
            )
        if consume_every < 1:
            raise ExperimentError(
                f"consume_every must be >= 1, got {consume_every}"
            )
        if scoring is not None and scoring not in FLEET_SCORING_MODES:
            raise ExperimentError(
                f"unknown fleet scoring mode {scoring!r}; "
                f"expected one of {FLEET_SCORING_MODES}"
            )
        self.scoring = scoring
        self.sessions = {s.chip_id: s for s in sessions}
        self.order = ids
        self.queue_depth = queue_depth
        self.policy = policy
        self.workers = workers
        self.consume_every = consume_every
        self.journal = journal if journal is not None else sessions[0].journal
        self.metrics = metrics if metrics is not None else sessions[0].metrics
        # Serial-mode bookkeeping (also the checkpointable state).
        self._tick = 0
        self._produced: dict[str, int] = {c: 0 for c in ids}
        self._pending: dict[str, list[int]] = {c: [] for c in ids}
        self._queue_dropped: dict[str, list[int]] = {c: [] for c in ids}
        #: Serial-mode batched scoring engine (built per run).
        self._engine: BatchedFleetMonitor | None = None
        # Time-to-first-verdict bookkeeping + (streaming ingest) the
        # live producer behind the feeds, both bound by run().
        self._t0 = 0.0
        self._ttfv_done = False
        self._producer = None

    # ------------------------------------------------------------------
    def scoring_mode(self) -> str:
        """The effective scoring mode (argument > env > default)."""
        if self.scoring is not None:
            return self.scoring
        return active_config().fleet_scoring
    def _effective_workers(self) -> int:
        # Single-CPU degrade mirrors run_campaigns: decided once by
        # ReproConfig (config override > REPRO_FORCE_POOL).
        n = min(resolve_workers(self.workers), len(self.order))
        if n > 1 and not active_config().pool_allowed:
            n = 1
        return n

    def run(
        self, feeds: list[TraceFeed], max_ticks: int | None = None
    ) -> FleetResult:
        """Stream every feed through its session; returns the outcome.

        ``max_ticks`` (serial mode only) stops after that many
        *absolute* production/consumption ticks, journals a
        ``checkpoint`` event, and leaves the scheduler resumable via
        :meth:`state_dict`.
        """
        feed_map = {f.chip_id: f for f in feeds}
        if sorted(feed_map) != sorted(self.order):
            raise ExperimentError(
                f"feeds {sorted(feed_map)} do not match sessions "
                f"{sorted(self.order)}"
            )
        n_workers = self._effective_workers()
        mode = self.scoring_mode()
        detector = self.sessions[self.order[0]].evaluator.detector
        if mode == "batched" and not getattr(
            detector, "supports_batched", True
        ):
            # Registry plugins whose scoring is not expressible as the
            # dense fingerprint-distance engine (population-relative
            # detectors, spectral features) take the sequential path;
            # the fallback is counted, never silent.
            mode = "sequential"
            self.metrics.counter("fleet.scoring.batched_fallback").inc()
        # Duck-typed on purpose: ProducerTraceSource is the only
        # source exposing .producer, and checking structurally keeps
        # the scheduler import-independent of the streaming layer.
        self._producer = next(
            (
                f.source.producer
                for f in feeds
                if hasattr(f.source, "producer")
            ),
            None,
        )
        start = time.perf_counter()
        self._t0 = start
        self._ttfv_done = False
        if n_workers > 1:
            if max_ticks is not None:
                raise ExperimentError(
                    "checkpointing (max_ticks) requires workers=1; the "
                    "threaded ingestors interleave nondeterministically"
                )
            self._run_threaded(feed_map, n_workers, mode)
            complete = True
        else:
            if mode == "batched":
                self._engine = BatchedFleetMonitor(
                    [self.sessions[c] for c in self.order],
                    metrics=self.metrics,
                )
            try:
                complete = self._run_serial(feed_map, max_ticks)
            finally:
                if self._engine is not None:
                    self._engine.sync_to_sessions()
                    self._engine = None
        elapsed = time.perf_counter() - start
        self.journal.flush()
        return self._result(feed_map, complete, elapsed)

    # ------------------------------------------------------------------
    def _drop_batch(self, chip_id: str, batch_index: int, feed: TraceFeed):
        """Account one queue eviction (drop_oldest) — loudly."""
        self._queue_dropped[chip_id].append(batch_index)
        journal_queue_drop(
            self.journal,
            self.metrics,
            chip_id,
            batch_index,
            feed.seqs_at(batch_index),
        )

    def _note_ttfv(self, alarmed: bool) -> None:
        """Record time-to-first-verdict at the fleet's first alarm.

        Driven by the ingest return values (not the alarm counter), so
        an all-clear run creates no instrument — snapshot parity with
        pre-TTFV checkpoints and across topologies.
        """
        if alarmed and not self._ttfv_done:
            self._ttfv_done = True
            self.metrics.gauge("fleet.ttfv.seconds").set(
                time.perf_counter() - self._t0
            )

    def _ingest_one(self, chip_id: str, batch: WindowBatch) -> None:
        """Drain one batch through the active scoring engine."""
        if self._engine is not None:
            out = self._engine.ingest_tick([(self.sessions[chip_id], batch)])
            self._note_ttfv(any(out.values()))
        else:
            self._note_ttfv(bool(self.sessions[chip_id].ingest(batch)))

    def _run_serial(
        self, feed_map: dict[str, TraceFeed], max_ticks: int | None
    ) -> bool:
        """Deterministic single-threaded produce/consume loop."""
        produced, pending = self._produced, self._pending
        # Per-chip gauge lookups (f-string + registry lock) are hot at
        # fleet scale; the gauge objects themselves are cheap to hold.
        hw_gauges = {
            c: self.metrics.gauge(f"chip.{c}.queue_high_water")
            for c in self.order
        }
        while True:
            live = any(
                produced[c] < feed_map[c].n_batches or pending[c]
                for c in self.order
            )
            if not live:
                return True
            if max_ticks is not None and self._tick >= max_ticks:
                self.journal.record(
                    "checkpoint",
                    tick=self._tick,
                    windows={
                        c: self.sessions[c].windows_ingested
                        for c in self.order
                    },
                )
                return False
            self._tick += 1
            for chip_id in self.order:
                feed = feed_map[chip_id]
                i = produced[chip_id]
                if i >= feed.n_batches:
                    continue
                if len(pending[chip_id]) >= self.queue_depth:
                    if self.policy == "drop_oldest":
                        self._drop_batch(
                            chip_id, pending[chip_id].pop(0), feed
                        )
                    else:
                        # "block": the producer waits for the consumer,
                        # which serially means draining the oldest batch
                        # through the session right now.
                        self.metrics.counter("fleet.queue.blocked").inc()
                        oldest = pending[chip_id].pop(0)
                        self._ingest_one(chip_id, feed.batch_at(oldest))
                hw_gauges[chip_id].max(len(pending[chip_id]) + 1)
                pending[chip_id].append(i)
                produced[chip_id] = i + 1
            if self._tick % self.consume_every == 0:
                drained = [
                    (chip_id, feed_map[chip_id].batch_at(
                        pending[chip_id].pop(0)
                    ))
                    for chip_id in self.order
                    if pending[chip_id]
                ]
                if self._engine is not None:
                    # One batched tick across every chip that has work.
                    out = self._engine.ingest_tick(
                        [(self.sessions[c], b) for c, b in drained]
                    )
                    self._note_ttfv(any(out.values()))
                else:
                    for chip_id, batch in drained:
                        self._note_ttfv(
                            bool(self.sessions[chip_id].ingest(batch))
                        )

    def _run_threaded(
        self, feed_map: dict[str, TraceFeed], n_workers: int, mode: str
    ) -> None:
        """Producer (main thread) + per-worker chip partitions."""
        queues = {
            c: BoundedQueue(self.queue_depth, self.policy)
            for c in self.order
        }
        errors: list[BaseException] = []

        def consume(chip_ids: list[str]) -> None:
            # Each worker owns a disjoint chip partition, so a
            # per-worker batched engine shares no session state with
            # its siblings; one engine tick scores every chip in the
            # partition that had an arrival this sweep.
            engine = None
            if mode == "batched":
                engine = BatchedFleetMonitor(
                    [self.sessions[c] for c in chip_ids],
                    metrics=self.metrics,
                )
            active = set(chip_ids)
            try:
                while active:
                    progress = False
                    arrivals: list[tuple[MonitorSession, WindowBatch]] = []
                    for chip_id in list(active):
                        q = queues[chip_id]
                        item = q.get_nowait()
                        if item is None:
                            if q.finished:
                                active.discard(chip_id)
                            continue
                        if engine is not None:
                            arrivals.append((self.sessions[chip_id], item))
                        else:
                            self._note_ttfv(
                                bool(self.sessions[chip_id].ingest(item))
                            )
                        progress = True
                    if arrivals:
                        out = engine.ingest_tick(arrivals)
                        self._note_ttfv(any(out.values()))
                    if not progress and active:
                        time.sleep(1e-4)
                if engine is not None:
                    engine.sync_to_sessions()
            except BaseException as exc:  # surfaced after join
                errors.append(exc)

        partitions: list[list[str]] = [[] for _ in range(n_workers)]
        for i, chip_id in enumerate(self.order):
            partitions[i % n_workers].append(chip_id)
        threads = [
            threading.Thread(target=consume, args=(part,), daemon=True)
            for part in partitions
            if part
        ]
        for t in threads:
            t.start()
        try:
            exhausted = False
            while not exhausted:
                exhausted = True
                for chip_id in self.order:
                    feed = feed_map[chip_id]
                    i = self._produced[chip_id]
                    if i >= feed.n_batches:
                        continue
                    exhausted = False
                    evicted = queues[chip_id].put(feed.batch_at(i))
                    if evicted is not None:
                        # drop_oldest eviction under contention.
                        idx = self._batch_index_of(feed, evicted)
                        self._drop_batch(chip_id, idx, feed)
                    self._produced[chip_id] = i + 1
        finally:
            for q in queues.values():
                q.close()
            for t in threads:
                t.join()
        for chip_id, q in queues.items():
            self.metrics.gauge(f"chip.{chip_id}.queue_high_water").max(
                q.high_water
            )
        if errors:
            raise errors[0]

    @staticmethod
    def _batch_index_of(feed: TraceFeed, batch: WindowBatch) -> int:
        """Recover a batch's index from its position in the schedule."""
        # Batches are contiguous slices of the delivery schedule; the
        # first seq's slice offset identifies the batch uniquely.
        for i in range(feed.n_batches):
            if feed.delivered_seqs[i * feed.batch: (i + 1) * feed.batch] \
                    == batch.seqs:
                return i
        raise ExperimentError("batch does not belong to this feed")

    # ------------------------------------------------------------------
    def _result(
        self,
        feed_map: dict[str, TraceFeed],
        complete: bool,
        elapsed: float,
    ) -> FleetResult:
        reports = {
            chip_id: chip_report_from(
                chip_id,
                feed_map[chip_id],
                self.sessions[chip_id],
                self._queue_dropped[chip_id],
                self.metrics,
            )
            for chip_id in self.order
        }
        return FleetResult(
            reports=reports,
            complete=complete,
            ticks=self._tick,
            elapsed_seconds=elapsed,
            metrics=self.metrics.snapshot(),
            journal_path=(
                str(self.journal.path) if self.journal.path else None
            ),
        )

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Checkpoint of a (partially run) serial fleet, JSON-encodable.

        Captures every session's monitor state plus the scheduler's
        production/queue bookkeeping.  Queued-but-not-yet-ingested
        batches are stored as feed batch *indices* — feeds are
        deterministic replays, so the queue contents rebuild exactly.
        The captured state is scoring-mode agnostic: a batched run
        syncs its dense engine state back into the sessions, so either
        mode resumes either mode's checkpoint bit-identically.
        """
        if self._engine is not None:
            self._engine.sync_to_sessions()
        state = {
            "tick": self._tick,
            "queue_depth": self.queue_depth,
            "policy": self.policy,
            "consume_every": self.consume_every,
            "order": list(self.order),
            "produced": dict(self._produced),
            "pending": {c: list(v) for c, v in self._pending.items()},
            "queue_dropped": {
                c: list(v) for c, v in self._queue_dropped.items()
            },
            "sessions": {
                c: self.sessions[c].state_dict() for c in self.order
            },
        }
        if self._producer is not None:
            # Streaming ingest rides along as an extra key every
            # from_state tolerates: the producer's resume cursor (the
            # serial loop advances watermarks exactly at consumption,
            # so the producer's own view is the right one here).
            state["producer"] = self._producer.state_dict()
        return state

    @classmethod
    def from_state(
        cls,
        state: dict,
        evaluator,
        journal: EventJournal | None = None,
        metrics: MetricsRegistry | None = None,
        workers: int | None = None,
    ) -> "FleetScheduler":
        """Rebuild a checkpointed fleet against the same evaluator.

        Resuming :meth:`run` with identically rebuilt feeds continues
        the stream bit-identically (same alarms and journal tail as an
        uninterrupted run).
        """
        metrics = metrics if metrics is not None else MetricsRegistry()
        journal = journal if journal is not None else EventJournal()
        sessions = [
            MonitorSession.from_state(
                state["sessions"][chip_id],
                evaluator,
                metrics=metrics,
                journal=journal,
            )
            for chip_id in state["order"]
        ]
        scheduler = cls(
            sessions,
            queue_depth=int(state["queue_depth"]),
            policy=state["policy"],
            workers=workers if workers is not None else 1,
            consume_every=int(state["consume_every"]),
            journal=journal,
            metrics=metrics,
        )
        scheduler._tick = int(state["tick"])
        scheduler._produced = {
            c: int(v) for c, v in state["produced"].items()
        }
        scheduler._pending = {
            c: [int(i) for i in v] for c, v in state["pending"].items()
        }
        scheduler._queue_dropped = {
            c: [int(i) for i in v]
            for c, v in state["queue_dropped"].items()
        }
        return scheduler
