"""Fleet monitoring service: many chips, streaming, supervised.

The paper's runtime framing — "the monitor keeps reading the EM sensor
output" — scaled out to a fleet of deployed chips:

* :class:`~repro.fleet.feed.TraceFeed` — replays acquisition/cache
  campaigns as per-chip streams with arrival batching and
  deterministic injected link faults (drops / duplicates / reorders);
* :class:`~repro.fleet.session.MonitorSession` — a checkpointable,
  instrumented :class:`~repro.framework.monitor.RuntimeMonitor`
  wrapper with bit-identical ``state_dict()``/``from_state`` resume;
* :class:`~repro.fleet.scheduler.FleetScheduler` — bounded per-chip
  queues, an explicit backpressure policy (``block`` /
  ``drop_oldest``, drop counts always surfaced), and worker fan-out
  following the :mod:`repro.experiments.parallel` conventions;
* :class:`~repro.fleet.ingest.ShardedFleetScheduler` — the
  multi-process sharded front-end: consistent-hash chip placement
  (:func:`~repro.fleet.shard.shard_assignments`), a length-prefixed
  framed wire protocol (:mod:`repro.fleet.wire`), memmapped
  zero-copy trace hand-off, and per-shard journals/metrics merged
  back bit-identically to the serial run;
* :class:`~repro.fleet.producer.StreamingTraceProducer` — live
  ``--ingest=stream`` trace generation: chunked, double-buffered
  acquisition overlapped with scoring (chunks reach shard workers as
  incremental ``APPEND`` stream-store segments), bit-identical to the
  pre-materialised replay because the
  :class:`~repro.fleet.producer.ChunkPlan` and its per-chunk RNG
  roles define the campaign in both modes;
* :class:`~repro.obs.metrics.MetricsRegistry` and
  :class:`~repro.obs.journal.EventJournal` (shared :mod:`repro.obs`
  package, re-exported here) — counters, gauges,
  p50/p95/p99 latency histograms, per-stage timing hooks and an
  atomically flushed JSONL event journal;
* :func:`~repro.fleet.campaign.run_fleet_campaign` and the
  ``repro-fleet`` console script — the simulated golden + T1–T4 + A2
  fleet campaign with combined time/spectral verdicts.

See ``docs/FLEET.md`` for the architecture, the backpressure policy,
the metrics glossary and the checkpoint format.
"""

from repro.fleet.feed import FaultSpec, NO_FAULTS, TraceFeed, WindowBatch
from repro.obs.journal import EventJournal
from repro.obs.metrics import MetricsRegistry, format_snapshot
from repro.fleet.scheduler import (
    BoundedQueue,
    ChipReport,
    FleetResult,
    FleetScheduler,
)
from repro.fleet.session import MonitorSession, floor_scaled_threshold
from repro.fleet.ingest import ShardedFleetScheduler
from repro.fleet.producer import (
    ArrayChunkSource,
    ChunkPlan,
    GroupChunkSource,
    ProducerTraceSource,
    StreamingTraceProducer,
    chunk_role,
)
from repro.fleet.shard import HashRing, shard_assignments
from repro.fleet.campaign import (
    DEFAULT_FLEET,
    ChipVerdict,
    FleetCampaignResult,
    FleetConfig,
    run_fleet_campaign,
)

__all__ = [
    "FaultSpec",
    "NO_FAULTS",
    "TraceFeed",
    "WindowBatch",
    "EventJournal",
    "MetricsRegistry",
    "format_snapshot",
    "BoundedQueue",
    "ChipReport",
    "FleetResult",
    "FleetScheduler",
    "MonitorSession",
    "floor_scaled_threshold",
    "ShardedFleetScheduler",
    "ArrayChunkSource",
    "ChunkPlan",
    "GroupChunkSource",
    "ProducerTraceSource",
    "StreamingTraceProducer",
    "chunk_role",
    "HashRing",
    "shard_assignments",
    "DEFAULT_FLEET",
    "ChipVerdict",
    "FleetCampaignResult",
    "FleetConfig",
    "run_fleet_campaign",
]
