"""Deprecated alias of :mod:`repro.obs.journal`.

The event journal was promoted out of the fleet service into the
shared :mod:`repro.obs` package.  Importing this module keeps working
but emits one ``DeprecationWarning``; ``from repro.fleet import
EventJournal`` stays warning-free via the package re-export.
"""

from __future__ import annotations

import warnings

from repro.obs.journal import (  # noqa: F401 - re-exported API
    EVENT_KINDS,
    EventJournal,
)

warnings.warn(
    "repro.fleet.journal moved to repro.obs.journal; "
    "update imports (this alias will be removed)",
    DeprecationWarning,
    stacklevel=2,
)
