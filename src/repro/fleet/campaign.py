"""The simulated fleet campaign: golden + T1–T4 + A2 under supervision.

Assembles everything in :mod:`repro.fleet` into the paper's deployment
story at fleet scale: one golden-characterised evaluator supervising a
set of deployed chips (one golden, five Trojaned), each streaming EM
trace windows over a faulty link into a checkpointable monitor
session, with a frequency-domain sweep covering what the time-domain
path cannot see (the A2 analog Trojan leaves no usable time-domain
trace; its gated trigger comb stands out spectrally — see
``tests/integration/test_end_to_end.py``).

Trace generation fans out across processes through
:func:`repro.experiments.parallel.run_campaigns` (the ingest fan-out
is threaded and separate); every chip's verdict combines the streaming
monitor and the spectral sweep through the framework's
:func:`~repro.framework.report.combine_verdicts`, exactly like the
one-shot evaluator, and the CLI's consistency check asserts the two
agree chip by chip.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.analysis.spectral import amplitude_spectrum, compare_spectra
from repro.chip.scenario import simulation_scenario
from repro.errors import ExperimentError
from repro.experiments.campaign import (
    calibrated,
    get_or_fit_detector,
    shared_chip,
)
from repro.experiments.parallel import campaign_spec, run_campaigns
from repro.config import active_config
from repro.fleet.feed import NO_FAULTS, FaultSpec, TraceFeed
from repro.obs.journal import EventJournal
from repro.obs.metrics import MetricsRegistry
from repro.fleet.ingest import ShardedFleetScheduler
from repro.fleet.scheduler import FleetResult, FleetScheduler
from repro.fleet.session import MonitorSession
from repro.framework.evaluator import EvaluatorConfig, RuntimeTrustEvaluator
from repro.framework.report import Verdict, combine_verdicts

#: The paper's fleet: the golden design plus every Trojaned variant.
DEFAULT_FLEET: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("golden", ()),
    ("trojan1", ("trojan1",)),
    ("trojan2", ("trojan2",)),
    ("trojan3", ("trojan3",)),
    ("trojan4", ("trojan4",)),
    ("a2", ("a2",)),
)


@dataclass(frozen=True)
class FleetConfig:
    """Knobs of one fleet campaign."""

    seed: int = 0
    receiver: str = "sensor"
    #: Golden characterisation campaign size (detector fit).
    n_golden: int = 512
    #: Streamed windows per fleet chip.
    n_windows: int = 384
    #: Monitor sliding-window length / alarm hysteresis.
    monitor_window: int = 256
    confirm: int = 3
    #: Session alarm threshold: ``"floor"`` (floor-scaled), ``None``
    #: (analytic three-sigma) or an explicit float.
    threshold: float | str | None = "floor"
    #: Arrival batching of the feeds [windows/batch].
    batch: int = 16
    queue_depth: int = 8
    policy: str = "block"
    #: Ingest fan-out (threads); trace generation fan-out (processes).
    workers: int | None = 1
    campaign_workers: int | None = None
    consume_every: int = 1
    #: Scoring engine: ``"batched"``/``"sequential"``, or ``None`` to
    #: defer to the active config (``REPRO_FLEET_SCORING``).
    scoring: str | None = None
    #: Shard-worker count, or ``None`` to defer to the active config
    #: (``REPRO_FLEET_SHARDS``).  An effective count of 1 keeps the
    #: campaign on the plain :class:`~repro.fleet.scheduler.
    #: FleetScheduler` path, byte-identical to a build without the
    #: sharded service.
    shards: int | None = None
    #: Shard transport (``"auto"``/``"socket"``/``"inline"``), or
    #: ``None`` to defer to ``REPRO_FLEET_TRANSPORT``.
    transport: str | None = None
    #: Link fault injection applied to every feed.
    faults: FaultSpec = NO_FAULTS
    #: Spectral sweep: record length, inspected band, boost criterion.
    spectral_cycles: int = 1536
    spectral_band: tuple[float, float] = (1e6, 60e6)
    boost_ratio: float = 1.3
    journal_path: str | None = None

    @classmethod
    def smoke(cls, **overrides) -> "FleetConfig":
        """Reduced sizes for CI smoke runs (``REPRO_BENCH_SMOKE=1``)."""
        base = cls(
            n_golden=192,
            n_windows=96,
            monitor_window=64,
            confirm=2,
            batch=8,
            spectral_cycles=768,
            # At smoke scale the bootstrap floor sits right on top of
            # the marginal Trojans' separations; the analytic envelope
            # keeps the streaming and one-shot decisions aligned.
            threshold=None,
        )
        return replace(base, **overrides)


@dataclass
class ChipVerdict:
    """One chip's combined fleet verdict plus the one-shot comparison."""

    chip_id: str
    verdict: Verdict
    time_alarm: bool
    spectral_alarm: bool
    first_alarm_window: int | None
    #: Alarm latency in delivered windows (None = never alarmed).
    alarm_latency: int | None
    #: The one-shot evaluator's verdict on the same delivered windows
    #: and the same spectral records.
    oneshot_verdict: Verdict
    separation: float
    separation_floor: float

    @property
    def matches_oneshot(self) -> bool:
        return self.verdict.is_alarm == self.oneshot_verdict.is_alarm


@dataclass
class FleetCampaignResult:
    """Everything one fleet campaign produced."""

    config: FleetConfig
    fleet: FleetResult
    verdicts: dict[str, ChipVerdict]
    metrics: dict = field(repr=False, default_factory=dict)
    journal_path: str | None = None

    @property
    def all_match_oneshot(self) -> bool:
        return all(v.matches_oneshot for v in self.verdicts.values())

    @property
    def flagged(self) -> tuple[str, ...]:
        return tuple(
            c for c, v in self.verdicts.items() if v.verdict.is_alarm
        )

    def format(self) -> str:
        lines = ["fleet trust report", "=" * 18, self.fleet.format(), ""]
        header = (
            f"  {'chip':<9} {'verdict':<20} {'latency':>8} "
            f"{'separation':>11} {'one-shot':<20} match"
        )
        lines.append(header)
        for chip_id, v in self.verdicts.items():
            latency = (
                f"{v.alarm_latency}w" if v.alarm_latency is not None else "—"
            )
            lines.append(
                f"  {chip_id:<9} {v.verdict.value:<20} {latency:>8} "
                f"{v.separation:>11.4f} {v.oneshot_verdict.value:<20} "
                f"{'ok' if v.matches_oneshot else 'MISMATCH'}"
            )
        lines.append(
            f"  flagged: {', '.join(self.flagged) if self.flagged else '—'}"
        )
        return "\n".join(lines)


def build_fleet_evaluator(
    chip, scenario, config: FleetConfig, golden_traces
) -> RuntimeTrustEvaluator:
    """Evaluator over a pre-generated golden campaign (monitor path).

    The spectral reference is handled by the campaign's own sweep (the
    fleet compares band-limited spectra directly), so the evaluator is
    assembled around the fitted detector without the training-time
    spectrum acquisition.
    """
    params = dict(
        n_traces=config.n_golden,
        receivers=(config.receiver,),
        rng_role="fleet/golden",
    )
    detector = get_or_fit_detector(
        chip, scenario, "ed", params, golden_traces
    )
    return RuntimeTrustEvaluator(
        detector=detector,
        golden_spectrum=None,
        fs=chip.config.fs,
        config=EvaluatorConfig(
            receiver=config.receiver, n_reference=config.n_golden
        ),
    )


def run_fleet_campaign(
    config: FleetConfig | None = None,
    fleet: tuple[tuple[str, tuple[str, ...]], ...] = DEFAULT_FLEET,
) -> FleetCampaignResult:
    """Run one simulated fleet campaign end to end."""
    config = config or FleetConfig()
    ids = [chip_id for chip_id, _ in fleet]
    if len(set(ids)) != len(ids):
        raise ExperimentError(f"fleet chip ids must be unique, got {ids}")
    chip = shared_chip(seed=config.seed)
    scenario = calibrated(chip, simulation_scenario())
    rcv = config.receiver

    # Every acquisition campaign, fanned out across processes at once:
    # the golden characterisation set, each chip's streamed windows and
    # the spectral-sweep records (golden reference + per chip).
    specs = [
        campaign_spec(
            "fleet-golden",
            "ed",
            chip,
            scenario,
            n_traces=config.n_golden,
            receivers=(rcv,),
            rng_role="fleet/golden",
        ),
        campaign_spec(
            "fleet-spec-ref",
            "spectral",
            chip,
            scenario,
            n_cycles=config.spectral_cycles,
            receivers=(rcv,),
            rng_role="fleet/spec-ref",
        ),
    ]
    for chip_id, enables in fleet:
        specs.append(
            campaign_spec(
                f"fleet-ed-{chip_id}",
                "ed",
                chip,
                scenario,
                n_traces=config.n_windows,
                trojan_enables=enables,
                receivers=(rcv,),
                rng_role=f"fleet/ed/{chip_id}",
            )
        )
        specs.append(
            campaign_spec(
                f"fleet-spec-{chip_id}",
                "spectral",
                chip,
                scenario,
                n_cycles=config.spectral_cycles,
                trojan_enables=enables,
                receivers=(rcv,),
                rng_role=f"fleet/spec/{chip_id}",
            )
        )
    traces = run_campaigns(specs, workers=config.campaign_workers)

    evaluator = build_fleet_evaluator(
        chip, scenario, config, traces["fleet-golden"][rcv]
    )
    detector = evaluator.detector

    metrics = MetricsRegistry()
    journal = EventJournal(config.journal_path)
    journal.record(
        "campaign",
        chips=ids,
        n_windows=config.n_windows,
        monitor_window=config.monitor_window,
        confirm=config.confirm,
        policy=config.policy,
    )
    sessions = [
        MonitorSession(
            chip_id,
            evaluator,
            window=config.monitor_window,
            confirm=config.confirm,
            threshold=config.threshold,
            metrics=metrics,
            journal=journal,
        )
        for chip_id in ids
    ]
    feeds = [
        TraceFeed(
            chip_id,
            traces[f"fleet-ed-{chip_id}"][rcv],
            batch=config.batch,
            faults=config.faults,
            seed=config.seed,
        )
        for chip_id in ids
    ]
    shards = (
        config.shards
        if config.shards is not None
        else active_config().fleet_shards
    )
    if min(shards, len(ids)) > 1:
        # Sharded service: the multi-process front-end owns the tick
        # loop, shard workers own the scoring (so the thread fan-out
        # knob does not apply).  Alarms, counters and journal content
        # are bit-identical to the serial path by construction.
        scheduler = ShardedFleetScheduler(
            sessions,
            queue_depth=config.queue_depth,
            policy=config.policy,
            consume_every=config.consume_every,
            scoring=config.scoring,
            shards=shards,
            transport=config.transport,
            journal=journal,
            metrics=metrics,
        )
    else:
        scheduler = FleetScheduler(
            sessions,
            queue_depth=config.queue_depth,
            policy=config.policy,
            workers=config.workers,
            consume_every=config.consume_every,
            scoring=config.scoring,
            journal=journal,
            metrics=metrics,
        )
    fleet_result = scheduler.run(feeds)

    # Frequency-domain sweep: every chip's record against the golden
    # reference, band-limited like Fig. 4.
    fs = chip.config.fs
    lo, hi = config.spectral_band
    golden_spec = amplitude_spectrum(
        traces["fleet-spec-ref"][rcv], fs
    ).band(lo, hi)
    verdicts: dict[str, ChipVerdict] = {}
    feed_map = {f.chip_id: f for f in feeds}
    for chip_id in ids:
        with metrics.time("stage.spectral.seconds"):
            suspect_spec = amplitude_spectrum(
                traces[f"fleet-spec-{chip_id}"][rcv], fs
            ).band(lo, hi)
            comparison = compare_spectra(
                golden_spec, suspect_spec, boost_ratio=config.boost_ratio
            )
        journal.record(
            "spectral",
            chip=chip_id,
            detected=bool(comparison.detected),
            boosted=len(comparison.boosted_spots),
            new=len(comparison.new_spots),
        )
        report = fleet_result.reports[chip_id]
        # One-shot comparison: the plain detector over the exact trace
        # multiset the stream delivered, plus the same spectral sweep.
        oneshot = detector.evaluate(feed_map[chip_id].delivered_traces())
        verdicts[chip_id] = ChipVerdict(
            chip_id=chip_id,
            verdict=combine_verdicts(
                report.time_alarm, bool(comparison.detected)
            ),
            time_alarm=report.time_alarm,
            spectral_alarm=bool(comparison.detected),
            first_alarm_window=report.first_alarm_window,
            alarm_latency=report.first_alarm_window,
            oneshot_verdict=combine_verdicts(
                bool(oneshot.detected), bool(comparison.detected)
            ),
            separation=float(oneshot.separation),
            separation_floor=float(oneshot.separation_floor),
        )
    journal.flush()
    return FleetCampaignResult(
        config=config,
        fleet=fleet_result,
        verdicts=verdicts,
        metrics=metrics.snapshot(),
        journal_path=str(journal.path) if journal.path else None,
    )
