"""The simulated fleet campaign: golden + T1–T4 + A2 under supervision.

Assembles everything in :mod:`repro.fleet` into the paper's deployment
story at fleet scale: one golden-characterised evaluator supervising a
set of deployed chips (one golden, five Trojaned), each streaming EM
trace windows over a faulty link into a checkpointable monitor
session, with a frequency-domain sweep covering what the time-domain
path cannot see (the A2 analog Trojan leaves no usable time-domain
trace; its gated trigger comb stands out spectrally — see
``tests/integration/test_end_to_end.py``).

Trace generation fans out across processes through
:func:`repro.experiments.parallel.run_campaigns` (the ingest fan-out
is threaded and separate); every chip's verdict combines the streaming
monitor and the spectral sweep through the framework's
:func:`~repro.framework.report.combine_verdicts`, exactly like the
one-shot evaluator, and the CLI's consistency check asserts the two
agree chip by chip.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.analysis.euclidean import (
    DistanceReport,
    EuclideanDetector,
    euclidean_distances,
)
from repro.analysis.spectral import amplitude_spectrum, compare_spectra
from repro.chip.scenario import simulation_scenario
from repro.errors import AnalysisError, ExperimentError
from repro.experiments.campaign import (
    calibrated,
    get_or_fit_detector,
    shared_chip,
)
from repro.experiments.parallel import campaign_spec, run_campaigns
from repro.config import FLEET_INGEST_MODES, active_config
from repro.fleet.feed import NO_FAULTS, FaultSpec, TraceFeed
from repro.fleet.producer import (
    ChunkPlan,
    GroupChunkSource,
    StreamingTraceProducer,
    chunk_role,
)
from repro.obs.journal import EventJournal
from repro.obs.metrics import MetricsRegistry
from repro.fleet.ingest import ShardedFleetScheduler
from repro.fleet.scheduler import FleetResult, FleetScheduler
from repro.fleet.session import MonitorSession
from repro.framework.evaluator import EvaluatorConfig, RuntimeTrustEvaluator
from repro.framework.report import Verdict, combine_verdicts

#: The paper's fleet: the golden design plus every Trojaned variant.
DEFAULT_FLEET: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("golden", ()),
    ("trojan1", ("trojan1",)),
    ("trojan2", ("trojan2",)),
    ("trojan3", ("trojan3",)),
    ("trojan4", ("trojan4",)),
    ("a2", ("a2",)),
)


@dataclass(frozen=True)
class FleetConfig:
    """Knobs of one fleet campaign."""

    seed: int = 0
    receiver: str = "sensor"
    #: Registry name of the window detector, or ``None`` to defer to
    #: the active config (``REPRO_DETECTOR``).
    detector: str | None = None
    #: Golden characterisation campaign size (detector fit).
    n_golden: int = 512
    #: Streamed windows per fleet chip.
    n_windows: int = 384
    #: Monitor sliding-window length / alarm hysteresis.
    monitor_window: int = 256
    confirm: int = 3
    #: Session alarm threshold: ``"floor"`` (floor-scaled), ``None``
    #: (analytic three-sigma) or an explicit float.
    threshold: float | str | None = "floor"
    #: Arrival batching of the feeds [windows/batch].
    batch: int = 16
    queue_depth: int = 8
    policy: str = "block"
    #: Ingest fan-out (threads); trace generation fan-out (processes).
    workers: int | None = 1
    campaign_workers: int | None = None
    consume_every: int = 1
    #: Scoring engine: ``"batched"``/``"sequential"``, or ``None`` to
    #: defer to the active config (``REPRO_FLEET_SCORING``).
    scoring: str | None = None
    #: Shard-worker count, or ``None`` to defer to the active config
    #: (``REPRO_FLEET_SHARDS``).  An effective count of 1 keeps the
    #: campaign on the plain :class:`~repro.fleet.scheduler.
    #: FleetScheduler` path, byte-identical to a build without the
    #: sharded service.
    shards: int | None = None
    #: Shard transport (``"auto"``/``"socket"``/``"inline"``), or
    #: ``None`` to defer to ``REPRO_FLEET_TRANSPORT``.
    transport: str | None = None
    #: Trace ingest: ``"replay"`` pre-materialises every chip's whole
    #: campaign before scoring starts; ``"stream"`` overlaps
    #: generation with scoring through a live chunked producer.
    #: ``None`` defers to ``REPRO_FLEET_INGEST``.  Both modes score
    #: the exact same trace bytes (chunk roles are part of the
    #: campaign's definition), so alarms, deterministic counters and
    #: journal bytes are bit-identical.
    ingest: str | None = None
    #: Windows per campaign chunk.  One acquisition per chunk — the
    #: granularity streaming overlaps at, and equally the replay
    #: path's sub-campaign size, so the two ingests share RNG roles.
    chunk: int = 64
    #: Link fault injection applied to every feed.
    faults: FaultSpec = NO_FAULTS
    #: Spectral sweep: record length, inspected band, boost criterion.
    spectral_cycles: int = 1536
    spectral_band: tuple[float, float] = (1e6, 60e6)
    boost_ratio: float = 1.3
    journal_path: str | None = None

    @classmethod
    def smoke(cls, **overrides) -> "FleetConfig":
        """Reduced sizes for CI smoke runs (``REPRO_BENCH_SMOKE=1``)."""
        base = cls(
            n_golden=192,
            n_windows=96,
            monitor_window=64,
            confirm=2,
            batch=8,
            # Two chunks at smoke scale: still exercises the chunked
            # RNG roles / multi-APPEND streaming path while keeping
            # the marginal trojan1 verdict consistent with one-shot
            # (smaller chunks shift the noise realisation enough to
            # split the streaming and one-shot decisions).
            chunk=48,
            spectral_cycles=768,
            # At smoke scale the bootstrap floor sits right on top of
            # the marginal Trojans' separations; the analytic envelope
            # keeps the streaming and one-shot decisions aligned.
            threshold=None,
        )
        return replace(base, **overrides)


@dataclass
class ChipVerdict:
    """One chip's combined fleet verdict plus the one-shot comparison."""

    chip_id: str
    verdict: Verdict
    time_alarm: bool
    spectral_alarm: bool
    first_alarm_window: int | None
    #: Alarm latency in delivered windows (None = never alarmed).
    alarm_latency: int | None
    #: The one-shot evaluator's verdict on the same delivered windows
    #: and the same spectral records.
    oneshot_verdict: Verdict
    separation: float
    separation_floor: float

    @property
    def matches_oneshot(self) -> bool:
        return self.verdict.is_alarm == self.oneshot_verdict.is_alarm


@dataclass
class FleetCampaignResult:
    """Everything one fleet campaign produced."""

    config: FleetConfig
    fleet: FleetResult
    verdicts: dict[str, ChipVerdict]
    metrics: dict = field(repr=False, default_factory=dict)
    journal_path: str | None = None

    @property
    def all_match_oneshot(self) -> bool:
        return all(v.matches_oneshot for v in self.verdicts.values())

    @property
    def flagged(self) -> tuple[str, ...]:
        return tuple(
            c for c, v in self.verdicts.items() if v.verdict.is_alarm
        )

    def format(self) -> str:
        lines = ["fleet trust report", "=" * 18, self.fleet.format(), ""]
        header = (
            f"  {'chip':<9} {'verdict':<20} {'latency':>8} "
            f"{'separation':>11} {'one-shot':<20} match"
        )
        lines.append(header)
        for chip_id, v in self.verdicts.items():
            latency = (
                f"{v.alarm_latency}w" if v.alarm_latency is not None else "—"
            )
            lines.append(
                f"  {chip_id:<9} {v.verdict.value:<20} {latency:>8} "
                f"{v.separation:>11.4f} {v.oneshot_verdict.value:<20} "
                f"{'ok' if v.matches_oneshot else 'MISMATCH'}"
            )
        lines.append(
            f"  flagged: {', '.join(self.flagged) if self.flagged else '—'}"
        )
        return "\n".join(lines)


def oneshot_report(detector, traces: np.ndarray) -> DistanceReport:
    """One-shot verdict over a delivered trace set, any registry detector.

    Euclidean-family detectors keep their historical
    :meth:`EuclideanDetector.evaluate` report bit for bit.  Other
    plugins (the reference-free spectral detectors) are mapped onto the
    same report shape through their streaming surface: per-window
    feature distance to the fitted fingerprint against the one-window
    ``streaming_threshold`` envelope, and the population's mean-feature
    separation against the full-set envelope — the same statistics
    their :class:`~repro.framework.monitor.RuntimeMonitor` integration
    thresholds on.
    """
    evaluate = getattr(detector, "evaluate", None)
    if evaluate is not None:
        return evaluate(traces)
    feats = detector.features(traces)
    d = euclidean_distances(feats, detector.fingerprint)
    threshold = float(detector.streaming_threshold(1))
    return DistanceReport(
        distances=d,
        threshold=threshold,
        mean_distance=float(d.mean()),
        exceed_fraction=float((d > threshold).mean()),
        separation=float(
            np.linalg.norm(feats.mean(axis=0) - detector.fingerprint)
        ),
        separation_floor=float(detector.streaming_threshold(len(feats))),
    )


class StreamingOneShot:
    """Incremental one-shot evaluation over a streamed campaign.

    The replay path scores :meth:`TraceFeed.delivered_traces` through
    :func:`oneshot_report` after the run; a streamed campaign never
    holds all its windows at once, so this accumulates the same
    statistics chunk by chunk from the producer's ``on_chunk`` hook.
    Each source window is weighted by its delivery count (duplicates
    count twice, drops zero) — feature extraction and per-row distances
    are row-independent for every supported detector, so
    ``exceed_fraction`` (integer counts) is *exactly* the replay value
    and the verdict booleans agree; ``mean_distance``/``separation``
    differ only by float summation order (~1 ulp).
    """

    def __init__(self, detector) -> None:
        if getattr(detector, "evaluate", None) is not None:
            # Euclidean family: Eq. (1) threshold + bootstrap floor.
            if (
                detector.threshold is None
                or detector.separation_floor is None
            ):
                raise ExperimentError(
                    "streaming one-shot needs a fitted detector"
                )
            self._row_threshold = float(detector.threshold)
            self._floor = lambda n: float(detector.separation_floor)
        else:
            # Registry plugins: the streaming-envelope statistics of
            # :func:`oneshot_report`.
            try:
                self._row_threshold = float(detector.streaming_threshold(1))
            except AnalysisError as exc:
                raise ExperimentError(
                    "streaming one-shot needs a fitted detector"
                ) from exc
            self._floor = lambda n: float(
                detector.streaming_threshold(max(1, int(round(n))))
            )
        self.detector = detector
        self.weights: dict[str, np.ndarray] = {}
        self._acc: dict[str, dict] = {}

    def set_weights(self, weights: dict[str, np.ndarray]) -> None:
        """Per-chip delivery counts over source windows (pre-run)."""
        self.weights = {
            c: np.asarray(w, dtype=np.float64) for c, w in weights.items()
        }

    def __call__(self, index, lo, hi, data) -> None:
        # Runs on the producer thread, once per generated chunk; no
        # other thread touches the accumulators until report().
        fingerprint = self.detector.fingerprint
        for chip_id, weights in self.weights.items():
            w = weights[lo:hi]
            total = float(w.sum())
            if total == 0.0:
                continue
            feats = self.detector.features(data[chip_id])
            d = euclidean_distances(feats, fingerprint)
            acc = self._acc.setdefault(
                chip_id,
                {
                    "n": 0.0,
                    "dist": 0.0,
                    "exceed": 0.0,
                    "feat": np.zeros(feats.shape[1]),
                },
            )
            acc["n"] += total
            acc["dist"] += float(w @ d)
            acc["exceed"] += float(w @ (d > self._row_threshold))
            acc["feat"] += w @ feats

    def report(self, chip_id: str) -> DistanceReport:
        """The chip's accumulated :class:`DistanceReport` (post-run)."""
        if chip_id not in self._acc:
            raise ExperimentError(
                f"no windows of {chip_id!r} were delivered; cannot "
                "form a one-shot verdict"
            )
        acc = self._acc[chip_id]
        mean_feat = acc["feat"] / acc["n"]
        return DistanceReport(
            distances=np.empty(0),
            threshold=self._row_threshold,
            mean_distance=acc["dist"] / acc["n"],
            exceed_fraction=acc["exceed"] / acc["n"],
            separation=float(
                np.linalg.norm(mean_feat - self.detector.fingerprint)
            ),
            separation_floor=self._floor(acc["n"]),
        )


def build_fleet_evaluator(
    chip, scenario, config: FleetConfig, golden_traces
) -> RuntimeTrustEvaluator:
    """Evaluator over a pre-generated golden campaign (monitor path).

    The spectral reference is handled by the campaign's own sweep (the
    fleet compares band-limited spectra directly), so the evaluator is
    assembled around the fitted detector without the training-time
    spectrum acquisition.
    """
    params = dict(
        n_traces=config.n_golden,
        receivers=(config.receiver,),
        rng_role="fleet/golden",
    )
    detector_name = (
        config.detector
        if config.detector is not None
        else active_config().detector
    )
    detector = get_or_fit_detector(
        chip, scenario, "ed", params, golden_traces,
        detector_name=detector_name,
    )
    return RuntimeTrustEvaluator(
        detector=detector,
        golden_spectrum=None,
        fs=chip.config.fs,
        config=EvaluatorConfig(
            receiver=config.receiver,
            n_reference=config.n_golden,
            detector=detector_name,
        ),
    )


def run_fleet_campaign(
    config: FleetConfig | None = None,
    fleet: tuple[tuple[str, tuple[str, ...]], ...] = DEFAULT_FLEET,
) -> FleetCampaignResult:
    """Run one simulated fleet campaign end to end."""
    config = config or FleetConfig()
    ids = [chip_id for chip_id, _ in fleet]
    if len(set(ids)) != len(ids):
        raise ExperimentError(f"fleet chip ids must be unique, got {ids}")
    ingest = (
        config.ingest
        if config.ingest is not None
        else active_config().fleet_ingest
    )
    if ingest not in FLEET_INGEST_MODES:
        raise ExperimentError(
            f"unknown fleet ingest mode {ingest!r}; "
            f"expected one of {FLEET_INGEST_MODES}"
        )
    # The chunk plan is part of the campaign's definition: both ingest
    # modes derive per-chunk RNG roles from it (a one-chunk plan keeps
    # the legacy whole-campaign role), so they generate and score the
    # exact same trace bytes.
    plan = ChunkPlan(n_windows=config.n_windows, chunk=config.chunk)

    def chunk_name(chip_id: str, k: int) -> str:
        if plan.n_chunks == 1:
            return f"fleet-ed-{chip_id}"
        return f"fleet-ed-{chip_id}-c{k}"

    chip = shared_chip(seed=config.seed)
    scenario = calibrated(chip, simulation_scenario())
    rcv = config.receiver

    # Every *pre-materialised* acquisition campaign, fanned out across
    # processes at once: the golden characterisation set, the
    # spectral-sweep records (golden reference + per chip) and — under
    # replay ingest only — each chip's streamed windows, one cacheable
    # sub-campaign per chunk.  Under streaming ingest the window
    # campaigns are generated live by the producer instead.
    specs = [
        campaign_spec(
            "fleet-golden",
            "ed",
            chip,
            scenario,
            n_traces=config.n_golden,
            receivers=(rcv,),
            rng_role="fleet/golden",
        ),
        campaign_spec(
            "fleet-spec-ref",
            "spectral",
            chip,
            scenario,
            n_cycles=config.spectral_cycles,
            receivers=(rcv,),
            rng_role="fleet/spec-ref",
        ),
    ]
    for chip_id, enables in fleet:
        if ingest == "replay":
            for k in range(plan.n_chunks):
                lo, hi = plan.bounds(k)
                specs.append(
                    campaign_spec(
                        chunk_name(chip_id, k),
                        "ed",
                        chip,
                        scenario,
                        n_traces=hi - lo,
                        trojan_enables=enables,
                        receivers=(rcv,),
                        rng_role=chunk_role(
                            f"fleet/ed/{chip_id}", plan, k
                        ),
                    )
                )
        specs.append(
            campaign_spec(
                f"fleet-spec-{chip_id}",
                "spectral",
                chip,
                scenario,
                n_cycles=config.spectral_cycles,
                trojan_enables=enables,
                receivers=(rcv,),
                rng_role=f"fleet/spec/{chip_id}",
            )
        )
    traces = run_campaigns(specs, workers=config.campaign_workers)

    evaluator = build_fleet_evaluator(
        chip, scenario, config, traces["fleet-golden"][rcv]
    )
    detector = evaluator.detector

    metrics = MetricsRegistry()
    journal = EventJournal(config.journal_path)
    journal.record(
        "campaign",
        chips=ids,
        n_windows=config.n_windows,
        monitor_window=config.monitor_window,
        confirm=config.confirm,
        policy=config.policy,
    )
    sessions = [
        MonitorSession(
            chip_id,
            evaluator,
            window=config.monitor_window,
            confirm=config.confirm,
            threshold=config.threshold,
            metrics=metrics,
            journal=journal,
        )
        for chip_id in ids
    ]
    producer: StreamingTraceProducer | None = None
    oneshot_acc: StreamingOneShot | None = None
    if ingest == "replay":
        feeds = [
            TraceFeed(
                chip_id,
                np.concatenate(
                    [
                        traces[chunk_name(chip_id, k)][rcv]
                        for k in range(plan.n_chunks)
                    ],
                    axis=0,
                )
                if plan.n_chunks > 1
                else traces[chunk_name(chip_id, 0)][rcv],
                batch=config.batch,
                faults=config.faults,
                seed=config.seed,
            )
            for chip_id in ids
        ]
    else:
        # Live producer: one lane-packed acquisition per chunk across
        # the whole fleet, double-buffered against scoring.  The
        # one-shot comparison accumulates incrementally from the
        # producer hook — a streamed campaign never exists in full.
        oneshot_acc = StreamingOneShot(detector)
        producer = StreamingTraceProducer(
            GroupChunkSource(
                chip,
                scenario,
                fleet,
                plan,
                receiver=rcv,
                base_role="fleet/ed",
            ),
            ids,
            n_windows=config.n_windows,
            chunk=config.chunk,
            metrics=metrics,
            on_chunk=oneshot_acc,
        )
        feeds = [
            TraceFeed(
                chip_id,
                producer.source_for(chip_id),
                batch=config.batch,
                faults=config.faults,
                seed=config.seed,
            )
            for chip_id in ids
        ]
        oneshot_acc.set_weights(
            {
                f.chip_id: np.bincount(
                    np.asarray(f.delivered_seqs, dtype=np.intp),
                    minlength=config.n_windows,
                )
                if f.n_delivered
                else np.zeros(config.n_windows)
                for f in feeds
            }
        )
        producer.start()
    shards = (
        config.shards
        if config.shards is not None
        else active_config().fleet_shards
    )
    if min(shards, len(ids)) > 1:
        # Sharded service: the multi-process front-end owns the tick
        # loop, shard workers own the scoring (so the thread fan-out
        # knob does not apply).  Alarms, counters and journal content
        # are bit-identical to the serial path by construction.
        scheduler = ShardedFleetScheduler(
            sessions,
            queue_depth=config.queue_depth,
            policy=config.policy,
            consume_every=config.consume_every,
            scoring=config.scoring,
            shards=shards,
            transport=config.transport,
            journal=journal,
            metrics=metrics,
        )
    else:
        scheduler = FleetScheduler(
            sessions,
            queue_depth=config.queue_depth,
            policy=config.policy,
            workers=config.workers,
            consume_every=config.consume_every,
            scoring=config.scoring,
            journal=journal,
            metrics=metrics,
        )
    try:
        fleet_result = scheduler.run(feeds)
        if producer is not None:
            # Trailing chunks the link dropped every window of still
            # belong to the campaign — wait until the one-shot
            # accumulator has seen them all.
            producer.join()
    finally:
        if producer is not None:
            producer.close()

    # Frequency-domain sweep: every chip's record against the golden
    # reference, band-limited like Fig. 4.
    fs = chip.config.fs
    lo, hi = config.spectral_band
    golden_spec = amplitude_spectrum(
        traces["fleet-spec-ref"][rcv], fs
    ).band(lo, hi)
    verdicts: dict[str, ChipVerdict] = {}
    feed_map = {f.chip_id: f for f in feeds}
    for chip_id in ids:
        with metrics.time("stage.spectral.seconds"):
            suspect_spec = amplitude_spectrum(
                traces[f"fleet-spec-{chip_id}"][rcv], fs
            ).band(lo, hi)
            comparison = compare_spectra(
                golden_spec, suspect_spec, boost_ratio=config.boost_ratio
            )
        journal.record(
            "spectral",
            chip=chip_id,
            detected=bool(comparison.detected),
            boosted=len(comparison.boosted_spots),
            new=len(comparison.new_spots),
        )
        report = fleet_result.reports[chip_id]
        # One-shot comparison: the plain detector over the exact trace
        # multiset the stream delivered, plus the same spectral sweep.
        # A streamed campaign was never held in full, so its one-shot
        # statistics come from the chunk-by-chunk accumulator instead.
        if oneshot_acc is not None:
            oneshot = oneshot_acc.report(chip_id)
        else:
            oneshot = oneshot_report(
                detector, feed_map[chip_id].delivered_traces()
            )
        verdicts[chip_id] = ChipVerdict(
            chip_id=chip_id,
            verdict=combine_verdicts(
                report.time_alarm, bool(comparison.detected)
            ),
            time_alarm=report.time_alarm,
            spectral_alarm=bool(comparison.detected),
            first_alarm_window=report.first_alarm_window,
            alarm_latency=report.first_alarm_window,
            oneshot_verdict=combine_verdicts(
                bool(oneshot.detected), bool(comparison.detected)
            ),
            separation=float(oneshot.separation),
            separation_floor=float(oneshot.separation_floor),
        )
    journal.flush()
    return FleetCampaignResult(
        config=config,
        fleet=fleet_result,
        verdicts=verdicts,
        metrics=metrics.snapshot(),
        journal_path=str(journal.path) if journal.path else None,
    )
