"""Sharded fleet front-end: asyncio ingest over the framed wire.

:class:`ShardedFleetScheduler` scales the single-process
:class:`~repro.fleet.scheduler.FleetScheduler` across shard worker
processes while preserving its **bit-identity guarantee**: a sharded
run's alarms, deterministic counters and journal bytes equal a
single-process run over the same arrival order.  The design splits the
scheduler's serial loop along its natural seam:

* the **front-end** (this class) owns the production loop — the tick
  counter, per-chip pending queues, the block/drop_oldest backpressure
  decisions and their journal/counter accounting.  These decisions
  need no feedback from scoring: consumption cadence is a pure
  function of ``consume_every``, so the front-end replays exactly the
  bookkeeping :meth:`FleetScheduler._run_serial` would, without ever
  touching a trace row (batch *indices* and
  :meth:`~repro.fleet.feed.TraceFeed.seqs_at` suffice);
* the **shards** own scoring — each runs the PR 6
  :class:`~repro.framework.batched.BatchedFleetMonitor` over its chip
  subset, fed ``BATCH``/``TICK`` frames that carry ``(tick, chip,
  batch_index)`` coordinates.  Trace rows never cross the wire: the
  front-end persists each chip's stream once
  (:func:`~repro.io.store.save_stream_store`) and shards map it
  read-only, rebuilding the identical deterministic
  :class:`~repro.fleet.feed.TraceFeed` from ``(seed, chip_id)``.

Scoring a chip subset batched is bitwise equal to scoring it inside
the full-fleet engine (row-wise normalisation and the separation
reduce are row-independent; a fitted PCA already falls back per-chip),
so splitting the fleet changes no float.  Event *order* is restored at
the end: every shard event is tagged ``(tick, phase)`` (0 =
production-phase block drains, 1 = consumption sweeps), the front-end
tags its own drop events the same way, and the merge stable-sorts by
``(tick, phase, global chip index)`` — reproducing the serial loop's
interleave exactly, because within one ``(tick, phase)`` the serial
loop walks chips in global order and all of one chip's events come
from one source.

Transports: ``socket`` forks real worker processes connected over a
unix-domain socket served by this process's asyncio loop, with an
:class:`AsyncBoundedQueue` per link bounding in-flight frames
(``fleet_ingest_depth``); ``inline`` runs the same engines in-process
through the same encoded frames (determinism checks without fork);
``auto`` picks ``socket`` when real parallelism is requested.
"""

from __future__ import annotations

import asyncio
import contextlib
import multiprocessing
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.config import (
    FLEET_SCORING_MODES,
    FLEET_TRANSPORTS,
    active_config,
)
from repro.errors import ExperimentError
from repro.fleet.feed import TraceFeed
from repro.fleet.scheduler import (
    POLICIES,
    FleetResult,
    chip_report_from,
    journal_queue_drop,
)
from repro.fleet.producer import ProducerTraceSource, StreamingTraceProducer
from repro.fleet.session import MonitorSession
from repro.fleet.shard import (
    ShardEngine,
    evaluator_to_wire,
    shard_assignments,
    shard_worker_main,
)
from repro.fleet.wire import (
    APPEND,
    BATCH,
    ERROR,
    HELLO,
    INIT,
    RESULT,
    SHUTDOWN,
    STATE,
    TICK,
    decode_frame,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.io.store import StreamSegmentWriter, save_stream_store
from repro.obs.journal import EventJournal
from repro.obs.metrics import MetricsRegistry


class AsyncBoundedQueue:
    """Bounded asyncio FIFO with high-water tracking.

    The per-shard-link flow control: the front-end ``put``\\ s encoded
    frames and **awaits** when the queue is full — the explicit
    ``block`` semantics of the scheduler's
    :class:`~repro.fleet.scheduler.BoundedQueue`, carried over to the
    ingest path (frames are never silently dropped; trace-window
    eviction policy lives in the per-chip queues, not here).
    """

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise ExperimentError(
                f"ingest queue depth must be >= 1, got {depth}"
            )
        self.depth = depth
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=depth)
        self.high_water = 0

    async def put(self, item) -> None:
        await self._queue.put(item)
        self.high_water = max(self.high_water, self._queue.qsize())

    async def get(self):
        return await self._queue.get()

    def qsize(self) -> int:
        return self._queue.qsize()


class _InlineLink:
    """In-process shard link: same frames, no processes.

    Frames are still encoded to bytes and decoded on "arrival", so the
    inline transport exercises the exact wire codec the socket path
    uses — which is what lets CI assert sharded-vs-serial determinism
    without fork.
    """

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.engine = ShardEngine(shard_id)
        self.frames_sent = 0

    async def send(self, kind: int, header: dict) -> None:
        self.frames_sent += 1
        self.engine.handle(*decode_frame(encode_frame(kind, header)))

    async def request_state(self) -> dict:
        self.frames_sent += 1
        response = self.engine.handle(
            *decode_frame(encode_frame(RESULT, {}))
        )
        kind, header, _ = response
        if kind == ERROR:
            raise ExperimentError(
                f"shard {self.shard_id} failed:\n{header['error']}"
            )
        return header

    async def shutdown(self) -> None:
        pass


class _SocketLink:
    """One connected shard worker behind a bounded sender queue."""

    def __init__(
        self,
        shard_id: int,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        process: multiprocessing.Process,
        depth: int,
    ) -> None:
        self.shard_id = shard_id
        self.reader = reader
        self.writer = writer
        self.process = process
        self.queue = AsyncBoundedQueue(depth)
        self.frames_sent = 0
        self._sender = asyncio.get_running_loop().create_task(
            self._drain()
        )
        self._failed: BaseException | None = None

    async def _drain(self) -> None:
        while True:
            item = await self.queue.get()
            if item is None:
                return
            try:
                self.writer.write(item)
                await self.writer.drain()
            except BaseException as exc:
                self._failed = exc
                return

    async def send(self, kind: int, header: dict) -> None:
        if self._failed is not None:
            raise ExperimentError(
                f"shard {self.shard_id} link failed: {self._failed!r}"
            )
        self.frames_sent += 1
        await self.queue.put(encode_frame(kind, header))

    async def request_state(self) -> dict:
        await self.send(RESULT, {})
        await self.queue.put(None)
        await self._sender
        if self._failed is not None:
            raise ExperimentError(
                f"shard {self.shard_id} link failed: {self._failed!r}"
            )
        kind, header, _ = await read_frame(self.reader)
        if kind == ERROR:
            raise ExperimentError(
                f"shard {self.shard_id} failed:\n{header['error']}"
            )
        if kind != STATE:
            raise ExperimentError(
                f"shard {self.shard_id} answered RESULT with frame "
                f"kind {kind!r}"
            )
        return header

    async def shutdown(self) -> None:
        if not self._sender.done():
            # Error-path exit: drop whatever is still queued (the run
            # already failed) so SHUTDOWN goes out promptly.
            self._sender.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._sender
        try:
            await write_frame(self.writer, SHUTDOWN, {})
            self.writer.close()
        except (ConnectionError, BrokenPipeError):
            pass
        self.process.join(timeout=30)
        if self.process.is_alive():  # pragma: no cover - watchdog
            self.process.terminate()
            self.process.join(timeout=5)


class ShardedFleetScheduler:
    """Multi-process fleet front-end, bit-identical to the serial path.

    The constructor mirrors :class:`~repro.fleet.scheduler.
    FleetScheduler` (sessions, queue_depth, policy, consume_every,
    journal, metrics, scoring) and adds the sharding knobs.  Its
    :meth:`state_dict` emits the *exact* serial-scheduler schema, so a
    checkpoint taken by either topology resumes under either — the
    cross-topology interconversion the tests assert.
    """

    def __init__(
        self,
        sessions: list[MonitorSession],
        queue_depth: int = 8,
        policy: str = "block",
        consume_every: int = 1,
        journal: EventJournal | None = None,
        metrics: MetricsRegistry | None = None,
        scoring: str | None = None,
        shards: int | None = None,
        transport: str | None = None,
        ingest_depth: int | None = None,
    ) -> None:
        if not sessions:
            raise ExperimentError("fleet needs at least one session")
        ids = [s.chip_id for s in sessions]
        if len(set(ids)) != len(ids):
            raise ExperimentError(f"chip ids must be unique, got {ids}")
        if policy not in POLICIES:
            raise ExperimentError(
                f"unknown backpressure policy {policy!r}; "
                f"expected one of {POLICIES}"
            )
        if consume_every < 1:
            raise ExperimentError(
                f"consume_every must be >= 1, got {consume_every}"
            )
        if scoring is not None and scoring not in FLEET_SCORING_MODES:
            raise ExperimentError(
                f"unknown fleet scoring mode {scoring!r}; "
                f"expected one of {FLEET_SCORING_MODES}"
            )
        if shards is not None and shards < 1:
            raise ExperimentError(
                f"shard count must be >= 1, got {shards}"
            )
        if transport is not None and transport not in FLEET_TRANSPORTS:
            raise ExperimentError(
                f"unknown fleet transport {transport!r}; "
                f"expected one of {FLEET_TRANSPORTS}"
            )
        if ingest_depth is not None and ingest_depth < 1:
            raise ExperimentError(
                f"ingest queue depth must be >= 1, got {ingest_depth}"
            )
        self.sessions = {s.chip_id: s for s in sessions}
        self.order = ids
        self.queue_depth = queue_depth
        self.policy = policy
        self.consume_every = consume_every
        self.journal = journal if journal is not None else sessions[0].journal
        self.metrics = metrics if metrics is not None else sessions[0].metrics
        self.scoring = scoring
        self.shards = shards
        self.transport = transport
        self.ingest_depth = ingest_depth
        self._tick = 0
        self._produced: dict[str, int] = {c: 0 for c in ids}
        self._pending: dict[str, list[int]] = {c: [] for c in ids}
        self._queue_dropped: dict[str, list[int]] = {c: [] for c in ids}
        self._chip_index = {c: i for i, c in enumerate(ids)}
        # Streaming ingest state (set by run() when the feeds pull from
        # a live producer): the shared producer and the next chunk to
        # persist + APPEND to the shards.
        self._producer: StreamingTraceProducer | None = None
        self._shipped = 0
        self._segments: StreamSegmentWriter | None = None
        self._t0: float | None = None
        self._feed_map: dict[str, TraceFeed] | None = None

    # -- knob resolution (argument > env/config > default) -------------
    def effective_shards(self) -> int:
        n = (
            self.shards
            if self.shards is not None
            else active_config().fleet_shards
        )
        # Never more shards than chips — empty shards would idle.
        return max(1, min(n, len(self.order)))

    def effective_transport(self) -> str:
        t = (
            self.transport
            if self.transport is not None
            else active_config().fleet_transport
        )
        if t == "auto":
            return "socket" if self.effective_shards() > 1 else "inline"
        return t

    def effective_ingest_depth(self) -> int:
        return (
            self.ingest_depth
            if self.ingest_depth is not None
            else active_config().fleet_ingest_depth
        )

    def scoring_mode(self) -> str:
        if self.scoring is not None:
            return self.scoring
        return active_config().fleet_scoring

    # -- the run -------------------------------------------------------
    def run(
        self,
        feeds: list[TraceFeed],
        max_ticks: int | None = None,
        store_dir: str | Path | None = None,
    ) -> FleetResult:
        """Stream every feed through the sharded fleet.

        Semantics match :meth:`FleetScheduler.run` in serial mode:
        ``max_ticks`` checkpoints at a tick boundary (journalling the
        same ``checkpoint`` event) and leaves :meth:`state_dict`
        resumable.  *store_dir* overrides where the per-chip stream
        stores are written (default: a temporary directory that lives
        only for this call).
        """
        feed_map = {f.chip_id: f for f in feeds}
        if sorted(feed_map) != sorted(self.order):
            raise ExperimentError(
                f"feeds {sorted(feed_map)} do not match sessions "
                f"{sorted(self.order)}"
            )
        self._producer = self._resolve_producer(feed_map)
        self._feed_map = feed_map
        start = time.perf_counter()
        if store_dir is not None:
            complete = asyncio.run(
                self._run_async(feed_map, max_ticks, Path(store_dir))
            )
        else:
            with tempfile.TemporaryDirectory(
                prefix="repro-fleet-shard-"
            ) as tmp:
                complete = asyncio.run(
                    self._run_async(feed_map, max_ticks, Path(tmp))
                )
        elapsed = time.perf_counter() - start
        self.journal.flush()
        reports = {
            chip_id: chip_report_from(
                chip_id,
                feed_map[chip_id],
                self.sessions[chip_id],
                self._queue_dropped[chip_id],
                self.metrics,
            )
            for chip_id in self.order
        }
        return FleetResult(
            reports=reports,
            complete=complete,
            ticks=self._tick,
            elapsed_seconds=elapsed,
            metrics=self.metrics.snapshot(),
            journal_path=(
                str(self.journal.path) if self.journal.path else None
            ),
        )

    def _resolve_producer(
        self, feed_map: dict[str, TraceFeed]
    ) -> StreamingTraceProducer | None:
        """The fleet's shared live producer, if the feeds stream.

        Streaming is all-or-nothing: every feed pulls from the same
        :class:`StreamingTraceProducer` (chunks are generated
        lane-packed across the whole fleet), or none does.
        """
        producers = {
            id(feed.source.producer): feed.source.producer
            for feed in feed_map.values()
            if isinstance(feed.source, ProducerTraceSource)
        }
        if not producers:
            return None
        if len(producers) > 1 or len(feed_map) != len(self.order) or any(
            not isinstance(feed.source, ProducerTraceSource)
            for feed in feed_map.values()
        ):
            raise ExperimentError(
                "streaming feeds must all share one producer "
                "(mixed producer/matrix fleets are not supported)"
            )
        return next(iter(producers.values()))

    async def _run_async(
        self,
        feed_map: dict[str, TraceFeed],
        max_ticks: int | None,
        store_dir: Path,
    ) -> bool:
        store_dir.mkdir(parents=True, exist_ok=True)
        n_shards = self.effective_shards()
        transport = self.effective_transport()
        owner = shard_assignments(self.order, n_shards)
        self.metrics.gauge("fleet.shards").max(n_shards)
        if self._producer is not None:
            self._shipped = self._producer.start_chunk
            self._segments = StreamSegmentWriter(store_dir, prefix="chunk")
        links = await self._open_links(n_shards, transport, store_dir)
        try:
            await self._init_shards(
                links, owner, feed_map, store_dir, n_shards
            )
            complete = await self._produce(feed_map, links, owner, max_ticks)
            states = [await link.request_state() for link in links]
        finally:
            for link in links:
                await link.shutdown()
        self._merge(states)
        if not complete:
            # Composed after the merge so it lands at the journal tail,
            # exactly where the serial loop records it.
            self.journal.record(
                "checkpoint",
                tick=self._tick,
                windows={
                    c: self.sessions[c].windows_ingested
                    for c in self.order
                },
            )
        for link in links:
            self.metrics.counter(
                f"shard.{link.shard_id}.frames"
            ).inc(link.frames_sent)
            if isinstance(link, _SocketLink):
                self.metrics.gauge(
                    f"shard.{link.shard_id}.ingest_high_water"
                ).max(link.queue.high_water)
        return complete

    async def _open_links(
        self, n_shards: int, transport: str, store_dir: Path
    ) -> list:
        if transport == "inline":
            return [_InlineLink(i) for i in range(n_shards)]
        if transport != "socket":
            raise ExperimentError(
                f"unknown fleet transport {transport!r}"
            )
        depth = self.effective_ingest_depth()
        store_dir.mkdir(parents=True, exist_ok=True)
        address = str(store_dir / "ingest.sock")
        pending: dict[int, tuple] = {}
        connected = asyncio.Event()

        async def on_connect(reader, writer):
            kind, header, _ = await read_frame(reader)
            if kind != HELLO:
                writer.close()
                return
            pending[int(header["shard"])] = (reader, writer)
            if len(pending) == n_shards:
                connected.set()

        server = await asyncio.start_unix_server(on_connect, path=address)
        ctx = multiprocessing.get_context("fork")
        processes = [
            ctx.Process(
                target=shard_worker_main,
                args=(address, shard_id),
                daemon=True,
            )
            for shard_id in range(n_shards)
        ]
        for p in processes:
            p.start()
        try:
            await asyncio.wait_for(connected.wait(), timeout=60)
        except asyncio.TimeoutError:
            for p in processes:
                p.terminate()
            raise ExperimentError(
                f"only {len(pending)}/{n_shards} shard workers "
                "connected within 60s"
            ) from None
        finally:
            server.close()
            await server.wait_closed()
        return [
            _SocketLink(
                shard_id,
                *pending[shard_id],
                process=processes[shard_id],
                depth=depth,
            )
            for shard_id in range(n_shards)
        ]

    async def _init_shards(
        self,
        links: list,
        owner: dict[str, int],
        feed_map: dict[str, TraceFeed],
        store_dir: Path,
        n_shards: int,
    ) -> None:
        if self._producer is None:
            # Replay ingest: persist each chip's prematerialised stream
            # once; frames then carry refs.
            specs = {}
            for chip_id in self.order:
                feed = feed_map[chip_id]
                ref = save_stream_store(
                    feed.source_traces,
                    store_dir / f"stream-{chip_id}.npy",
                    chip_id=chip_id,
                )
                specs[chip_id] = {"ref": ref.as_dict()}
            self._t0 = time.time()
        else:
            # Streaming ingest: no up-front store.  Shards build empty
            # SegmentedStream views now; rows follow as APPEND frames.
            # The first chunk (already being generated in the
            # background) fixes the row shape/dtype the views need.
            producer = self._producer
            first = await asyncio.to_thread(
                producer.chunk, producer.start_chunk
            )
            sample = first[self.order[0]]
            self._t0 = time.time()
            specs = {
                chip_id: {
                    "stream": {
                        "n_windows": producer.n_windows,
                        "samples": int(sample.shape[1]),
                        "dtype": str(sample.dtype),
                    }
                }
                for chip_id in self.order
            }
        scoring = self.scoring_mode()
        evaluator_state = evaluator_to_wire(
            self.sessions[self.order[0]].evaluator
        )
        for shard_id, link in enumerate(links):
            chips = [
                {
                    "chip_id": chip_id,
                    "session": self.sessions[chip_id].state_dict(),
                    "feed": {
                        **specs[chip_id],
                        "batch": feed_map[chip_id].batch,
                        "faults": [
                            feed_map[chip_id].faults.drop,
                            feed_map[chip_id].faults.duplicate,
                            feed_map[chip_id].faults.reorder,
                        ],
                        "seed": feed_map[chip_id].seed,
                    },
                }
                for chip_id in self.order
                if owner[chip_id] == shard_id
            ]
            await link.send(
                INIT,
                {
                    "shard": shard_id,
                    "scoring": scoring,
                    "evaluator": evaluator_state,
                    "chips": chips,
                    "t0": self._t0,
                },
            )

    async def _produce(
        self,
        feed_map: dict[str, TraceFeed],
        links: list,
        owner: dict[str, int],
        max_ticks: int | None,
    ) -> bool:
        """The serial production loop, scoring delegated to shards.

        Bookkeeping (tick counter, pending indices, drop decisions,
        high-water gauges) is line-for-line the serial scheduler's —
        the *only* difference is that ingestion becomes a frame send.
        Under streaming ingest, every frame that references a batch is
        preceded (on the same FIFO links) by the ``APPEND`` frames for
        whatever chunks that batch's windows live in.
        """
        producer = self._producer

        async def ship_through(chip_id: str, index: int) -> None:
            # Persist + broadcast every chunk the batch's highest
            # source window needs; link FIFOs guarantee the APPENDs
            # land before the BATCH/TICK that references them.
            needed = producer.plan.chunk_of(
                max(feed_map[chip_id].seqs_at(index))
            )
            while self._shipped <= needed:
                k = self._shipped
                lo, hi = producer.plan.bounds(k)
                data = await asyncio.to_thread(producer.chunk, k)
                ref = self._segments.append(
                    np.concatenate(
                        [data[c] for c in self.order], axis=0
                    ),
                    label="chunk",
                )
                header = {
                    "chunk": k,
                    "lo": lo,
                    "hi": hi,
                    "ref": ref.as_dict(),
                    "chips": {
                        c: i * (hi - lo)
                        for i, c in enumerate(self.order)
                    },
                }
                for link in links:
                    await link.send(APPEND, header)
                # The chunk now lives on disk behind the shards'
                # memmaps; the producer's in-memory copy can go.
                producer.release_through(hi)
                self._shipped = k + 1

        produced, pending = self._produced, self._pending
        hw_gauges = {
            c: self.metrics.gauge(f"chip.{c}.queue_high_water")
            for c in self.order
        }
        while True:
            live = any(
                produced[c] < feed_map[c].n_batches or pending[c]
                for c in self.order
            )
            if not live:
                return True
            if max_ticks is not None and self._tick >= max_ticks:
                return False
            self._tick += 1
            for chip_id in self.order:
                feed = feed_map[chip_id]
                i = produced[chip_id]
                if i >= feed.n_batches:
                    continue
                if len(pending[chip_id]) >= self.queue_depth:
                    if self.policy == "drop_oldest":
                        index = pending[chip_id].pop(0)
                        self._queue_dropped[chip_id].append(index)
                        with self.journal.annotate(
                            tick=self._tick, phase=0
                        ):
                            journal_queue_drop(
                                self.journal,
                                self.metrics,
                                chip_id,
                                index,
                                feed.seqs_at(index),
                            )
                    else:
                        # Created lazily, exactly like the serial loop,
                        # so an all-clear run snapshots no counter.
                        self.metrics.counter("fleet.queue.blocked").inc()
                        oldest = pending[chip_id].pop(0)
                        if producer is not None:
                            await ship_through(chip_id, oldest)
                        await links[owner[chip_id]].send(
                            BATCH,
                            {
                                "tick": self._tick,
                                "chip": chip_id,
                                "batch": oldest,
                            },
                        )
                hw_gauges[chip_id].max(len(pending[chip_id]) + 1)
                pending[chip_id].append(i)
                produced[chip_id] = i + 1
            if self._tick % self.consume_every == 0:
                arrivals: dict[int, list] = {}
                for chip_id in self.order:
                    if pending[chip_id]:
                        arrivals.setdefault(owner[chip_id], []).append(
                            [chip_id, pending[chip_id].pop(0)]
                        )
                if producer is not None:
                    for batch_list in arrivals.values():
                        for chip_id, index in batch_list:
                            await ship_through(chip_id, index)
                for shard_id, batch_list in arrivals.items():
                    await links[shard_id].send(
                        TICK,
                        {"tick": self._tick, "arrivals": batch_list},
                    )

    # -- merging shard state back -------------------------------------
    def _merge(self, states: list[dict]) -> None:
        """Fold shard results into this process, restoring event order."""
        evaluator = self.sessions[self.order[0]].evaluator
        # Time-to-first-verdict travels in the STATE header, not the
        # metrics state: the metrics merge maxes gauges, and the fleet
        # verdict lands at the *earliest* shard alarm.
        ttfvs = [
            state["ttfv"]
            for state in states
            if state.get("ttfv") is not None
        ]
        if ttfvs:
            self.metrics.gauge("fleet.ttfv.seconds").set(min(ttfvs))
        for state in states:
            self.metrics.merge_state(state["metrics"])
            for chip_id, session_state in state["sessions"].items():
                self.sessions[chip_id] = MonitorSession.from_state(
                    session_state,
                    evaluator,
                    metrics=self.metrics,
                    journal=self.journal,
                )
        head = [
            event
            for tag, event in self.journal.tagged()
            if tag is None
        ]
        tagged = [
            (tag, event)
            for tag, event in self.journal.tagged()
            if tag is not None
        ]
        for state in states:
            tagged.extend(
                (tag, event) for tag, event in state["journal"]
            )
        # Stable sort restores the serial interleave: within one
        # (tick, phase) the serial loop walks chips in global order,
        # and all of one chip's same-phase events come from one source,
        # so their recorded order is preserved.
        tagged.sort(
            key=lambda item: (
                item[0]["tick"],
                item[0]["phase"],
                self._chip_index[item[1]["chip"]],
            )
        )
        self.journal.rewrite(head + [event for _, event in tagged])

    # -- checkpointing -------------------------------------------------
    def state_dict(self) -> dict:
        """Checkpoint in the serial scheduler's exact schema.

        A sharded checkpoint resumes under
        :meth:`FleetScheduler.from_state` (single-process sequential or
        batched) and vice versa — the cross-topology interconversion
        guarantee.  Valid after :meth:`run` returned (complete or
        checkpointed); the shard workers are already gone by then, the
        merged session states live here.
        """
        state = {
            "tick": self._tick,
            "queue_depth": self.queue_depth,
            "policy": self.policy,
            "consume_every": self.consume_every,
            "order": list(self.order),
            "produced": dict(self._produced),
            "pending": {c: list(v) for c, v in self._pending.items()},
            "queue_dropped": {
                c: list(v) for c, v in self._queue_dropped.items()
            },
            "sessions": {
                c: self.sessions[c].state_dict() for c in self.order
            },
        }
        if self._producer is not None:
            # Extra key, ignored by replay resumes: the producer cursor
            # a resumed streaming run passes back as ``start_chunk``.
            # The front-end advances producer watermarks as it *ships*
            # (not as shards consume), so the resumable cursor comes
            # from the scheduler's own pending state: the chunk of the
            # lowest window any pending-or-future batch references.
            state["producer"] = self._producer.state_dict()
            if self._feed_map is not None:
                low = min(
                    self._feed_map[c].low_watermark(
                        self._pending[c][0]
                        if self._pending[c]
                        else self._produced[c]
                    )
                    for c in self.order
                )
                state["producer"]["next_chunk"] = (
                    self._producer.plan.chunk_of(low)
                )
        return state

    @classmethod
    def from_state(
        cls,
        state: dict,
        evaluator,
        journal: EventJournal | None = None,
        metrics: MetricsRegistry | None = None,
        shards: int | None = None,
        transport: str | None = None,
        ingest_depth: int | None = None,
    ) -> "ShardedFleetScheduler":
        """Resume any scheduler's checkpoint under the sharded topology.

        Accepts checkpoints written by :meth:`state_dict` *or* by the
        serial :meth:`FleetScheduler.state_dict` — the schema is
        shared.  The next :meth:`run` re-INITs fresh shard workers from
        the restored mid-stream session states.
        """
        metrics = metrics if metrics is not None else MetricsRegistry()
        journal = journal if journal is not None else EventJournal()
        sessions = [
            MonitorSession.from_state(
                state["sessions"][chip_id],
                evaluator,
                metrics=metrics,
                journal=journal,
            )
            for chip_id in state["order"]
        ]
        scheduler = cls(
            sessions,
            queue_depth=int(state["queue_depth"]),
            policy=state["policy"],
            consume_every=int(state["consume_every"]),
            journal=journal,
            metrics=metrics,
            shards=shards,
            transport=transport,
            ingest_depth=ingest_depth,
        )
        scheduler._tick = int(state["tick"])
        scheduler._produced = {
            c: int(v) for c, v in state["produced"].items()
        }
        scheduler._pending = {
            c: [int(i) for i in v] for c, v in state["pending"].items()
        }
        scheduler._queue_dropped = {
            c: [int(i) for i in v]
            for c, v in state["queue_dropped"].items()
        }
        return scheduler
