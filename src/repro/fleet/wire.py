"""Length-prefixed framed wire protocol for the sharded fleet service.

The ingest front-end (:mod:`repro.fleet.ingest`) and the shard workers
(:mod:`repro.fleet.shard`) speak a deliberately small binary framing:

.. code-block:: text

    +----------------+--------+-------------------+-----------+---------+
    | u32 body_len   | u8 kind| u32 header_len    | header    | payload |
    | (big-endian)   |        | (big-endian)      | (JSON)    | (bytes) |
    +----------------+--------+-------------------+-----------+---------+

``body_len`` counts everything after the length prefix; ``header`` is
a UTF-8 JSON object; ``payload`` is whatever bytes remain (currently
always empty — trace batches cross processes as
:class:`~repro.io.store.StreamStoreRef` *references* inside the
header, never as payload bytes, which is the zero-copy hand-off).

The same encoding travels over every transport: blocking sockets in
the shard workers (:func:`send_frame` / :func:`recv_frame`), asyncio
streams in the front-end (:func:`write_frame` / :func:`read_frame`),
and plain byte strings in the ``inline`` transport (the frames are
still encoded and decoded, so the codec is exercised even without
processes).  :class:`FrameDecoder` is the incremental flip side for
byte-stream consumers that receive partial frames.

Frame kinds
-----------
``HELLO``     shard → front-end, once after connect (``{"shard": i}``).
``INIT``      front-end → shard: evaluator state, session states, feed
              specs with stream-store refs, scoring mode.
``BATCH``     front-end → shard: one block-policy drain —
              ``{"tick", "chip", "batch"}`` (production phase).
``TICK``      front-end → shard: one consumption sweep —
              ``{"tick", "arrivals": [[chip, batch_index], ...]}``.
``RESULT``    front-end → shard: request final state.
``STATE``     shard → front-end: session states + tagged journal
              events + metrics state (the response to ``RESULT``).
``SHUTDOWN``  front-end → shard: exit cleanly.
``ERROR``     shard → front-end: ``{"error": traceback}``.
``APPEND``    front-end → shard: one freshly generated streaming
              chunk — ``{"chunk", "lo", "hi", "ref", "chips": {chip:
              row_offset}}``; the ref names a lane-stacked stream
              store segment the shard attaches to every owned chip's
              :class:`~repro.io.store.SegmentedStream`.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct

from repro.errors import ExperimentError

#: Frame kinds (the ``u8`` on the wire).
HELLO = 1
INIT = 2
BATCH = 3
TICK = 4
RESULT = 5
STATE = 6
SHUTDOWN = 7
ERROR = 8
APPEND = 9

KINDS = (HELLO, INIT, BATCH, TICK, RESULT, STATE, SHUTDOWN, ERROR, APPEND)

#: Hard ceiling on one frame's body — a corrupt length prefix must not
#: make a reader allocate gigabytes.  Headers carry refs and state
#: dicts, not trace matrices, so real frames sit far below this.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct(">I")
_HEAD = struct.Struct(">BI")


def encode_frame(kind: int, header: dict, payload: bytes = b"") -> bytes:
    """Serialise one frame (length prefix included)."""
    if kind not in KINDS:
        raise ExperimentError(f"unknown frame kind {kind!r}")
    raw_header = json.dumps(header, sort_keys=True).encode("utf-8")
    body_len = _HEAD.size + len(raw_header) + len(payload)
    if body_len > MAX_FRAME_BYTES:
        raise ExperimentError(
            f"frame body of {body_len} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit"
        )
    return b"".join(
        (
            _LEN.pack(body_len),
            _HEAD.pack(kind, len(raw_header)),
            raw_header,
            payload,
        )
    )


def decode_body(body: bytes) -> tuple[int, dict, bytes]:
    """Decode one frame body (everything after the length prefix)."""
    if len(body) < _HEAD.size:
        raise ExperimentError(
            f"truncated frame body ({len(body)} bytes)"
        )
    kind, header_len = _HEAD.unpack_from(body)
    if kind not in KINDS:
        raise ExperimentError(f"unknown frame kind {kind!r} on the wire")
    end = _HEAD.size + header_len
    if end > len(body):
        raise ExperimentError(
            f"frame header of {header_len} bytes overruns the "
            f"{len(body)}-byte body"
        )
    header = json.loads(body[_HEAD.size:end].decode("utf-8"))
    if not isinstance(header, dict):
        raise ExperimentError("frame header must be a JSON object")
    return kind, header, body[end:]


def decode_frame(data: bytes) -> tuple[int, dict, bytes]:
    """Decode one complete frame from *data* (prefix + body, exact)."""
    if len(data) < _LEN.size:
        raise ExperimentError(f"truncated frame ({len(data)} bytes)")
    (body_len,) = _LEN.unpack_from(data)
    if body_len > MAX_FRAME_BYTES:
        raise ExperimentError(
            f"frame length {body_len} exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit"
        )
    if len(data) != _LEN.size + body_len:
        raise ExperimentError(
            f"frame length {body_len} does not match the "
            f"{len(data) - _LEN.size} bytes provided"
        )
    return decode_body(data[_LEN.size:])


class FrameDecoder:
    """Incremental decoder over an untrusted byte stream.

    Feed arbitrary chunks; complete frames come out as they finish.
    Partial frames are buffered, oversize length prefixes are rejected
    before any allocation of the claimed size.
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> list[tuple[int, dict, bytes]]:
        """Absorb *data*; return every frame completed by it."""
        self._buf.extend(data)
        frames = []
        while True:
            if len(self._buf) < _LEN.size:
                break
            (body_len,) = _LEN.unpack_from(self._buf)
            if body_len > MAX_FRAME_BYTES:
                raise ExperimentError(
                    f"frame length {body_len} exceeds the "
                    f"{MAX_FRAME_BYTES}-byte frame limit"
                )
            if len(self._buf) < _LEN.size + body_len:
                break
            body = bytes(self._buf[_LEN.size:_LEN.size + body_len])
            del self._buf[:_LEN.size + body_len]
            frames.append(decode_body(body))
        return frames

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered towards the next (incomplete) frame."""
        return len(self._buf)


# -- blocking-socket transport (shard workers) -------------------------

def send_frame(
    sock: socket.socket, kind: int, header: dict, payload: bytes = b""
) -> None:
    """Write one frame to a blocking socket."""
    sock.sendall(encode_frame(kind, header, payload))


def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ExperimentError(
                "shard link closed mid-frame (peer died?)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> tuple[int, dict, bytes]:
    """Read one complete frame from a blocking socket."""
    (body_len,) = _LEN.unpack(_recv_exactly(sock, _LEN.size))
    if body_len > MAX_FRAME_BYTES:
        raise ExperimentError(
            f"frame length {body_len} exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit"
        )
    return decode_body(_recv_exactly(sock, body_len))


# -- asyncio transport (ingest front-end) ------------------------------

async def write_frame(
    writer: asyncio.StreamWriter,
    kind: int,
    header: dict,
    payload: bytes = b"",
) -> None:
    """Write one frame to an asyncio stream and drain it."""
    writer.write(encode_frame(kind, header, payload))
    await writer.drain()


async def read_frame(
    reader: asyncio.StreamReader,
) -> tuple[int, dict, bytes]:
    """Read one complete frame from an asyncio stream."""
    try:
        prefix = await reader.readexactly(_LEN.size)
        (body_len,) = _LEN.unpack(prefix)
        if body_len > MAX_FRAME_BYTES:
            raise ExperimentError(
                f"frame length {body_len} exceeds the "
                f"{MAX_FRAME_BYTES}-byte frame limit"
            )
        body = await reader.readexactly(body_len)
    except asyncio.IncompleteReadError as exc:
        raise ExperimentError(
            "shard link closed mid-frame (peer died?)"
        ) from exc
    return decode_body(body)
