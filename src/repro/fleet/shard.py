"""Shard workers: consistent chip placement + the per-shard engine.

A shard is one worker process (or, under the ``inline`` transport, one
in-process engine) owning a fixed subset of the fleet's chips.  Three
pieces live here:

* :class:`HashRing` / :func:`shard_assignments` — deterministic
  consistent-hash chip→shard placement.  Hashing is SHA-256 over the
  chip id (NOT Python's per-process-salted ``hash()``), so every
  process — front-end, workers, a resumed run next week — computes the
  same placement, and adding a shard moves only ``~1/n`` of the chips.
* :class:`ShardEngine` — the state machine a shard runs: it rebuilds
  its sessions and trace feeds from an ``INIT`` frame (traces arrive
  as memmapped :class:`~repro.io.store.StreamStoreRef`\\ s — the shard
  maps the front-end's file read-only instead of receiving bytes),
  scores ``BATCH``/``TICK`` frames through the PR 6
  :class:`~repro.framework.batched.BatchedFleetMonitor` *unchanged*,
  and answers ``RESULT`` with its session states, tagged journal
  events and metrics state.
* :func:`shard_worker_main` — the child-process entry point: connect
  back to the front-end's unix socket, say ``HELLO``, then loop
  frames until ``SHUTDOWN``.

Every journal event a shard records is tagged (via
:meth:`~repro.obs.journal.EventJournal.annotate`) with the global
scheduler tick and phase the front-end stamped on the frame, which is
what lets the front-end merge per-shard journals back into the exact
single-process event order (see :mod:`repro.fleet.ingest`).
"""

from __future__ import annotations

import bisect
import hashlib
import socket
import time
import traceback

from repro.analysis.euclidean import EuclideanDetector
from repro.errors import ExperimentError
from repro.fleet.feed import FaultSpec, TraceFeed
from repro.fleet.session import MonitorSession
from repro.fleet.wire import (
    APPEND,
    BATCH,
    ERROR,
    HELLO,
    INIT,
    RESULT,
    SHUTDOWN,
    STATE,
    TICK,
    recv_frame,
    send_frame,
)
from repro.framework.batched import BatchedFleetMonitor
from repro.framework.evaluator import EvaluatorConfig, RuntimeTrustEvaluator
from repro.io.store import SegmentedStream, open_stream_store
from repro.obs.journal import EventJournal
from repro.obs.metrics import MetricsRegistry

#: Virtual nodes per shard on the hash ring.  Enough to keep the
#: placement balanced at small shard counts without making ring
#: construction noticeable.
VIRTUAL_NODES = 64


def _ring_hash(key: str) -> int:
    """Stable 64-bit position on the ring (process-salt free)."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring mapping chip ids to shard indices."""

    def __init__(
        self, n_shards: int, virtual_nodes: int = VIRTUAL_NODES
    ) -> None:
        if n_shards < 1:
            raise ExperimentError(
                f"shard count must be >= 1, got {n_shards}"
            )
        if virtual_nodes < 1:
            raise ExperimentError(
                f"virtual node count must be >= 1, got {virtual_nodes}"
            )
        self.n_shards = n_shards
        points = []
        for shard in range(n_shards):
            for vnode in range(virtual_nodes):
                points.append(
                    (_ring_hash(f"shard/{shard}/vnode/{vnode}"), shard)
                )
        points.sort()
        self._points = points
        self._positions = [p for p, _ in points]

    def owner(self, chip_id: str) -> int:
        """The shard owning *chip_id* (first point clockwise)."""
        h = _ring_hash(f"chip/{chip_id}")
        i = bisect.bisect_right(self._positions, h)
        if i == len(self._positions):
            i = 0
        return self._points[i][1]


def shard_assignments(
    chip_ids: list[str], n_shards: int
) -> dict[str, int]:
    """Deterministic chip→shard placement for the whole fleet.

    Pure function of ``(chip_ids, n_shards)`` — identical in every
    process and across runs, which checkpoint/resume relies on.
    """
    ring = HashRing(n_shards)
    return {chip_id: ring.owner(chip_id) for chip_id in chip_ids}


# -- evaluator transfer ------------------------------------------------

def evaluator_to_wire(evaluator: RuntimeTrustEvaluator) -> dict:
    """The evaluator state a shard needs, JSON-encodable.

    Shards only score time-domain windows (feature extraction + the
    sliding separation test), so the fitted detector and the sample
    rate suffice; the golden spectrum stays with the front-end, which
    owns the spectral sweep.  Detector floats cross as JSON — Python's
    float encoding is shortest-round-trip, so every float64 in the
    fingerprint survives exactly and shard-side features are bitwise
    equal to front-end ones.
    """
    return {
        "detector": evaluator.detector.state_dict(),
        "fs": float(evaluator.fs),
    }


def evaluator_from_wire(data: dict) -> RuntimeTrustEvaluator:
    """Rebuild the scoring-only evaluator in a shard process."""
    return RuntimeTrustEvaluator(
        detector=EuclideanDetector.from_state(data["detector"]),
        golden_spectrum=None,
        fs=float(data["fs"]),
        config=EvaluatorConfig(),
    )


# -- the shard engine --------------------------------------------------

class ShardEngine:
    """One shard's frame handler (shared by socket and inline runs)."""

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.journal = EventJournal()
        self.metrics = MetricsRegistry()
        self.sessions: dict[str, MonitorSession] = {}
        self.order: list[str] = []
        self.feeds: dict[str, TraceFeed] = {}
        self.evaluator: RuntimeTrustEvaluator | None = None
        self._engine: BatchedFleetMonitor | None = None
        self._error: str | None = None
        # Streaming ingest: per owned chip, the segmented view APPEND
        # frames grow; empty for replay (whole-store) runs.
        self._streams: dict[str, SegmentedStream] = {}
        # Time-to-first-verdict, measured against the front-end's run
        # start (the INIT frame's ``t0`` wall clock) — wall clock is
        # the one clock processes share.
        self._t0: float | None = None
        self._ttfv: float | None = None

    # -- frame dispatch ------------------------------------------------
    def handle(
        self, kind: int, header: dict, payload: bytes = b""
    ) -> tuple[int, dict, bytes] | None:
        """Process one frame; returns a response frame for ``RESULT``.

        A failure on any frame latches into an ``ERROR`` response at
        the next ``RESULT`` request instead of killing the link —
        the front-end always gets the traceback, never a dead socket.
        """
        if self._error is not None and kind != RESULT:
            return None
        try:
            if kind == INIT:
                self._init(header)
            elif kind == APPEND:
                self._append(header)
            elif kind == BATCH:
                self._batch(header)
            elif kind == TICK:
                self._tick(header)
            elif kind == RESULT:
                return self._result()
            else:
                raise ExperimentError(
                    f"shard {self.shard_id} cannot handle frame kind "
                    f"{kind!r}"
                )
        except BaseException:
            self._error = traceback.format_exc()
            if kind == RESULT:
                return (ERROR, {"error": self._error}, b"")
        return None

    def _init(self, header: dict) -> None:
        self.evaluator = evaluator_from_wire(header["evaluator"])
        scoring = header["scoring"]
        self._t0 = float(header["t0"]) if "t0" in header else None
        self._ttfv = None
        self.order = [spec["chip_id"] for spec in header["chips"]]
        self.sessions = {}
        self.feeds = {}
        self._streams = {}
        for spec in header["chips"]:
            chip_id = spec["chip_id"]
            session = MonitorSession.from_state(
                spec["session"],
                self.evaluator,
                metrics=self.metrics,
                journal=self.journal,
            )
            self.sessions[chip_id] = session
            feed_spec = spec["feed"]
            if "stream" in feed_spec:
                # Streaming ingest: rows arrive later as APPEND
                # segments; the delivery schedule only needs the
                # window count, so the feed is fully built now.
                stream = feed_spec["stream"]
                traces = SegmentedStream(
                    n_windows=int(stream["n_windows"]),
                    samples=int(stream["samples"]),
                    dtype=str(stream["dtype"]),
                )
                self._streams[chip_id] = traces
            else:
                traces = open_stream_store(feed_spec["ref"])
            self.feeds[chip_id] = TraceFeed(
                chip_id,
                traces,
                batch=int(feed_spec["batch"]),
                faults=FaultSpec(*feed_spec["faults"]),
                seed=int(feed_spec["seed"]),
            )
        self._engine = None
        # A shard can land zero chips at small fleet sizes (consistent
        # hashing balances, it does not guarantee coverage); it then
        # just answers RESULT with empty state.
        if scoring == "batched" and self.order:
            detector = self.sessions[self.order[0]].evaluator.detector
            if not getattr(detector, "supports_batched", True):
                # Mirror the front-end scheduler: sequential fallback
                # for plugins the dense engine cannot score, counted
                # per shard rather than silently absorbed.
                self.metrics.counter(
                    "fleet.scoring.batched_fallback"
                ).inc()
            else:
                self._engine = BatchedFleetMonitor(
                    [self.sessions[c] for c in self.order],
                    metrics=self.metrics,
                )

    def _append(self, header: dict) -> None:
        """Attach one streamed chunk segment to every owned chip.

        The segment is lane-stacked: one store file holds the chunk's
        rows for the *whole* fleet, and ``chips`` maps each chip to
        its row offset inside it.  Chips this shard does not own are
        simply skipped — every shard receives every APPEND.
        """
        lo, hi = int(header["lo"]), int(header["hi"])
        for chip_id, stream in self._streams.items():
            stream.append(
                header["ref"],
                lo,
                hi,
                row_offset=int(header["chips"][chip_id]),
            )

    def _ingest(self, arrivals: list[tuple[str, int]]) -> None:
        """Score a list of ``(chip, batch_index)`` in the given order."""
        pairs = [
            (self.sessions[chip], self.feeds[chip].batch_at(int(index)))
            for chip, index in arrivals
        ]
        alarmed = False
        if self._engine is not None:
            out = self._engine.ingest_tick(pairs)
            alarmed = any(out.values())
        else:
            for session, batch in pairs:
                alarmed = bool(session.ingest(batch)) or alarmed
        # Detected from the ingest return values, not the alarm
        # counter — an all-clear run must create no instrument.
        if alarmed and self._ttfv is None and self._t0 is not None:
            self._ttfv = time.time() - self._t0

    def _batch(self, header: dict) -> None:
        # One block-policy drain: the front-end's production loop hit
        # a full per-chip queue and (policy "block") drained the oldest
        # batch through the engine — phase 0 of the tick.
        with self.journal.annotate(tick=int(header["tick"]), phase=0):
            self._ingest([(header["chip"], header["batch"])])

    def _tick(self, header: dict) -> None:
        # One consumption sweep — phase 1.  Arrivals come pre-ordered
        # by global chip order; at most one batch per chip.
        with self.journal.annotate(tick=int(header["tick"]), phase=1):
            self._ingest(
                [(chip, index) for chip, index in header["arrivals"]]
            )

    def _result(self) -> tuple[int, dict, bytes]:
        if self._error is not None:
            return (ERROR, {"error": self._error}, b"")
        if self._engine is not None:
            self._engine.sync_to_sessions()
        header = {
            "shard": self.shard_id,
            "sessions": {
                chip_id: self.sessions[chip_id].state_dict()
                for chip_id in self.order
            },
            "journal": [
                [tag, event] for tag, event in self.journal.tagged()
            ],
            "metrics": self.metrics.state_dict(),
            "ttfv": self._ttfv,
        }
        return (STATE, header, b"")


# -- the worker process ------------------------------------------------

def shard_worker_main(address: str, shard_id: int) -> None:
    """Child-process entry point: serve one shard over a unix socket."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        sock.connect(address)
        send_frame(sock, HELLO, {"shard": shard_id})
        engine = ShardEngine(shard_id)
        while True:
            kind, header, payload = recv_frame(sock)
            if kind == SHUTDOWN:
                break
            response = engine.handle(kind, header, payload)
            if response is not None:
                send_frame(sock, *response)
    finally:
        sock.close()
