"""``repro fleet`` — the fleet monitoring console entry point.

Runs a simulated golden + T1–T4 + A2 fleet campaign and prints the
fleet trust report: per-chip verdicts (time-domain streaming monitor
combined with the spectral sweep), alarm latencies, explicit drop
counts and ingestion throughput, plus the metrics summary.  With
``--journal`` the JSONL event journal lands on disk; with ``--json``
a machine-readable summary does.

``--check-oneshot`` exits non-zero when any chip's streaming verdict
disagrees with the one-shot evaluator run over the same delivered
windows and spectra — the consistency gate CI's ``fleet-smoke`` job
enforces.  ``--smoke`` (or ``REPRO_BENCH_SMOKE=1``) selects the
reduced CI configuration.
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings
from dataclasses import asdict

# SMOKE_ENV_VAR is re-exported here for backwards compatibility; its
# resolution lives in repro.config.
from repro.config import SMOKE_ENV_VAR, active_config
from repro.fleet.campaign import (
    DEFAULT_FLEET,
    FleetConfig,
    FleetCampaignResult,
    run_fleet_campaign,
)
from repro.fleet.feed import FaultSpec
from repro.obs.metrics import format_snapshot
from repro.io.store import save_json_report


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro fleet",
        description=(
            "Stream a simulated fleet (golden + T1-T4 + A2) through the "
            "runtime trust monitor and print the fleet trust report."
        ),
    )
    p.add_argument("--seed", type=int, default=0, help="fleet seed")
    p.add_argument(
        "--chips",
        default=None,
        help=(
            "comma-separated subset of "
            + ",".join(c for c, _ in DEFAULT_FLEET)
        ),
    )
    p.add_argument("--windows", type=int, default=None,
                   help="streamed windows per chip")
    p.add_argument("--golden-traces", type=int, default=None,
                   help="golden characterisation campaign size")
    p.add_argument("--monitor-window", type=int, default=None,
                   help="monitor sliding-window length")
    p.add_argument("--confirm", type=int, default=None,
                   help="consecutive out-of-envelope windows to alarm")
    p.add_argument("--batch", type=int, default=None,
                   help="feed arrival batch size [windows]")
    p.add_argument("--queue-depth", type=int, default=None,
                   help="bounded per-chip queue depth [batches]")
    p.add_argument("--policy", choices=("block", "drop_oldest"),
                   default=None, help="backpressure policy")
    p.add_argument("--workers", type=int, default=None,
                   help="ingest fan-out (threads; 1 = deterministic serial)")
    p.add_argument("--campaign-workers", type=int, default=None,
                   help="trace-generation fan-out (processes)")
    p.add_argument("--consume-every", type=int, default=None,
                   help="serial consumer pacing (ticks per drain)")
    p.add_argument("--scoring", choices=("batched", "sequential"),
                   default=None,
                   help="scoring engine (default: REPRO_FLEET_SCORING, "
                        "i.e. batched)")
    p.add_argument("--shards", type=int, default=None,
                   help="shard worker processes (default: "
                        "REPRO_FLEET_SHARDS, i.e. 1 = the serial "
                        "single-process path)")
    p.add_argument("--transport", choices=("auto", "socket", "inline"),
                   default=None,
                   help="shard transport (default: "
                        "REPRO_FLEET_TRANSPORT, i.e. auto)")
    p.add_argument("--ingest", choices=("replay", "stream"),
                   default=None,
                   help="trace ingest: pre-materialise campaigns "
                        "(replay) or overlap generation with scoring "
                        "(stream); default: REPRO_FLEET_INGEST, i.e. "
                        "replay — both score identical bytes")
    p.add_argument("--chunk", type=int, default=None,
                   help="windows per campaign chunk (one acquisition "
                        "per chunk; shared by both ingest modes)")
    p.add_argument("--spectral-cycles", type=int, default=None,
                   help="spectral sweep record length [cycles]")
    p.add_argument("--drop", type=float, default=0.0,
                   help="link fault: window drop probability")
    p.add_argument("--duplicate", type=float, default=0.0,
                   help="link fault: window duplication probability")
    p.add_argument("--reorder", type=float, default=0.0,
                   help="link fault: adjacent-window swap probability")
    p.add_argument("--journal", default=None,
                   help="write the JSONL event journal to this path")
    p.add_argument("--json", dest="json_path", default=None,
                   help="write a machine-readable summary to this path")
    p.add_argument("--smoke", action="store_true",
                   help=f"reduced CI sizes (also via {SMOKE_ENV_VAR}=1)")
    p.add_argument("--check-oneshot", action="store_true",
                   help="exit 2 on any streaming-vs-one-shot verdict "
                        "mismatch")
    return p


def _config_from(args: argparse.Namespace) -> FleetConfig:
    smoke = args.smoke or active_config().bench_smoke
    overrides: dict = {"seed": args.seed}
    for arg_name, field_name in (
        ("windows", "n_windows"),
        ("golden_traces", "n_golden"),
        ("monitor_window", "monitor_window"),
        ("confirm", "confirm"),
        ("batch", "batch"),
        ("queue_depth", "queue_depth"),
        ("policy", "policy"),
        ("workers", "workers"),
        ("campaign_workers", "campaign_workers"),
        ("consume_every", "consume_every"),
        ("scoring", "scoring"),
        ("shards", "shards"),
        ("transport", "transport"),
        ("ingest", "ingest"),
        ("chunk", "chunk"),
        ("spectral_cycles", "spectral_cycles"),
    ):
        value = getattr(args, arg_name)
        if value is not None:
            overrides[field_name] = value
    overrides["faults"] = FaultSpec(
        drop=args.drop, duplicate=args.duplicate, reorder=args.reorder
    )
    if args.journal is not None:
        overrides["journal_path"] = args.journal
    if smoke:
        return FleetConfig.smoke(**overrides)
    return FleetConfig(**overrides)


def _summary(result: FleetCampaignResult) -> dict:
    """Machine-readable campaign summary (JSON-encodable)."""
    fleet = result.fleet
    return {
        "config": {
            **{k: v for k, v in asdict(result.config).items()
               if k != "faults"},
            "faults": asdict(result.config.faults),
        },
        "scoring_mode": result.config.scoring
        or active_config().fleet_scoring,
        "ingest_mode": result.config.ingest
        or active_config().fleet_ingest,
        "shards": (
            result.config.shards
            if result.config.shards is not None
            else active_config().fleet_shards
        ),
        "throughput_windows_per_s": fleet.throughput,
        "elapsed_seconds": fleet.elapsed_seconds,
        "windows_ingested": fleet.windows_ingested,
        "flagged": list(result.flagged),
        "all_match_oneshot": result.all_match_oneshot,
        "chips": {
            chip_id: {
                "verdict": v.verdict.value,
                "oneshot_verdict": v.oneshot_verdict.value,
                "matches_oneshot": v.matches_oneshot,
                "time_alarm": v.time_alarm,
                "spectral_alarm": v.spectral_alarm,
                "alarm_latency_windows": v.alarm_latency,
                "separation": v.separation,
                "separation_floor": v.separation_floor,
                "windows_ingested":
                    fleet.reports[chip_id].windows_ingested,
                "link_dropped": fleet.reports[chip_id].feed_dropped,
                "link_duplicated": fleet.reports[chip_id].feed_duplicated,
                "link_reordered": fleet.reports[chip_id].feed_reordered,
                "queue_dropped_windows":
                    fleet.reports[chip_id].queue_dropped_windows,
            }
            for chip_id, v in result.verdicts.items()
        },
        "metrics": result.metrics,
        "journal": result.journal_path,
    }


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    config = _config_from(args)
    fleet = DEFAULT_FLEET
    if args.chips:
        wanted = [c.strip() for c in args.chips.split(",") if c.strip()]
        known = dict(DEFAULT_FLEET)
        unknown = [c for c in wanted if c not in known]
        if unknown:
            print(
                f"repro-fleet: unknown chips {unknown}; "
                f"valid: {sorted(known)}",
                file=sys.stderr,
            )
            return 1
        fleet = tuple((c, known[c]) for c in wanted)

    result = run_fleet_campaign(config, fleet=fleet)
    print(result.format())
    print()
    print(format_snapshot(result.metrics))

    if args.json_path:
        save_json_report(_summary(result), args.json_path)
        print(f"summary written to {args.json_path}")
    if result.journal_path:
        print(f"journal written to {result.journal_path}")

    if args.check_oneshot and not result.all_match_oneshot:
        mismatched = [
            c for c, v in result.verdicts.items() if not v.matches_oneshot
        ]
        print(
            f"repro-fleet: streaming vs one-shot verdict mismatch on "
            f"{mismatched}",
            file=sys.stderr,
        )
        return 2
    return 0


def deprecated_main(argv: list[str] | None = None) -> int:
    """Entry point of the legacy ``repro-fleet`` console script.

    ``repro-fleet`` became ``repro fleet`` when the unified ``repro``
    CLI landed; the old script keeps working as an alias but emits one
    ``DeprecationWarning`` per invocation.
    """
    warnings.warn(
        "the repro-fleet script is deprecated; use `repro fleet`",
        DeprecationWarning,
        stacklevel=2,
    )
    return main(argv)


if __name__ == "__main__":  # pragma: no cover - exercised via CI job
    raise SystemExit(main())
