"""Live streaming trace production: overlap acquisition with scoring.

The replay ingest mode prematerialises every chip's whole campaign
before the first window is scored, so time-to-first-verdict equals
full-campaign generation time and peak memory is O(campaign).  This
module is the other half of ``--ingest=stream``: a
:class:`StreamingTraceProducer` drives trace generation in tick-sized
**chunks** on a background thread, double-buffered so chunk ``N + 1``
is being generated while chunk ``N`` is being scored, and serves rows
to the per-chip :class:`~repro.fleet.feed.TraceFeed`\\ s through
:class:`ProducerTraceSource` — the feed's delivery schedule, fault
injection and batching are untouched, which is what keeps the
streamed run bit-identical to the replay.

Chunking is part of the campaign's *definition*, not an
implementation detail: batch columns inside one acquisition share
their stimulus/noise streams, so a campaign can only be generated
incrementally at acquisition boundaries.  :class:`ChunkPlan` fixes
those boundaries and :func:`chunk_role` derives one RNG role per
chunk (``fleet/ed/<chip>/chunk<k>``); the replay path materialises
the *same* per-chunk campaigns (cached and process-parallel through
``run_campaigns``) and concatenates them, so both ingest modes score
the exact same bytes.  Each chunk is a pure function of ``(seed,
role, chunk index)`` — independently regenerable, which is what makes
mid-stream checkpoint/resume O(1): a resumed producer starts at the
first chunk the checkpoint still needs and never replays the past.

Memory stays bounded by the consumption watermarks the feeds push
back (:meth:`TraceFeed.batch_at` → ``source.advance``): a chunk is
freed once every chip's future deliveries lie past it, so the
steady-state footprint is ``prefetch + 1`` chunks, not the campaign.

Observability: ``producer.chunks`` / ``producer.windows`` counters
(deterministic — identical across topologies), ``producer.chunk.
seconds`` / ``producer.wait.seconds`` histograms (generation cost and
consumer stall time), and ``producer.buffered_windows`` /
``producer.buffered_chunks`` high-water gauges.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.errors import ExperimentError
from repro.fleet.feed import TraceSource
from repro.obs.metrics import MetricsRegistry

#: Default windows per streamed chunk (full-size fleet configs).  Six
#: chunks over the default 384-window campaign: deep enough a verdict
#: lands while most of the campaign is still ungenerated, coarse
#: enough the per-acquisition warm-up stays amortised.
DEFAULT_CHUNK_WINDOWS = 64

#: Chunks generated ahead of the scoring frontier (double buffering).
DEFAULT_PREFETCH = 2


@dataclass(frozen=True)
class ChunkPlan:
    """Fixed chunk boundaries over a campaign's window stream."""

    n_windows: int
    chunk: int

    def __post_init__(self) -> None:
        if self.n_windows < 1:
            raise ExperimentError(
                f"chunk plan needs >= 1 window, got {self.n_windows}"
            )
        if self.chunk < 1:
            raise ExperimentError(
                f"chunk size must be >= 1, got {self.chunk}"
            )

    @property
    def n_chunks(self) -> int:
        return -(-self.n_windows // self.chunk)

    def bounds(self, index: int) -> tuple[int, int]:
        """Source window range ``[lo, hi)`` of chunk *index*."""
        if not 0 <= index < self.n_chunks:
            raise ExperimentError(
                f"chunk index {index} out of range [0, {self.n_chunks})"
            )
        lo = index * self.chunk
        return lo, min(lo + self.chunk, self.n_windows)

    def chunk_of(self, seq: int) -> int:
        """The chunk holding source window *seq* (clamped at the end)."""
        return min(max(int(seq), 0) // self.chunk, self.n_chunks - 1)


def chunk_role(base_role: str, plan: ChunkPlan, index: int) -> str:
    """RNG role of one campaign chunk.

    A single-chunk plan keeps the legacy whole-campaign role, so runs
    whose chunk covers the campaign reproduce pre-streaming trace
    bytes exactly; multi-chunk plans suffix the chunk index, making
    every chunk an independent seeded campaign.
    """
    if plan.n_chunks == 1:
        return base_role
    return f"{base_role}/chunk{index}"


class ArrayChunkSource:
    """Chunk source over prematerialised per-chip matrices.

    The test/bench harness: serves chunk slices of arrays that already
    exist, so streaming-pipeline behaviour (ordering, freeing, resume)
    can be asserted without paying for chip simulation.
    """

    def __init__(self, streams: dict[str, np.ndarray]) -> None:
        if not streams:
            raise ExperimentError("chunk source needs at least one chip")
        lengths = {v.shape[0] for v in streams.values()}
        if len(lengths) != 1:
            raise ExperimentError(
                f"chip streams must share a window count, got {lengths}"
            )
        self.streams = {k: np.asarray(v) for k, v in streams.items()}

    def generate(self, index: int, lo: int, hi: int) -> dict[str, np.ndarray]:
        return {c: rows[lo:hi] for c, rows in self.streams.items()}


class GroupChunkSource:
    """Acquisition-backed chunk source: one lane-packed pass per chunk.

    Every fleet chip shares one netlist, so a chunk's campaigns fold
    into a single :meth:`~repro.chip.acquire.AcquisitionEngine.
    acquire_group` call — one stepping pass and one activity-fold GEMM
    for the whole fleet — whose per-member traces are bitwise equal to
    solo acquisitions with the same per-chunk RNG roles (the PR 6
    guarantee).  Records then go through the same
    :func:`~repro.experiments.campaign.segment_ed_windows`
    post-processing the replay path's ``collect_ed_traces`` applies,
    so a streamed chunk is byte-identical to its prematerialised twin.
    """

    def __init__(
        self,
        chip,
        scenario,
        fleet,
        plan: ChunkPlan,
        receiver: str = "sensor",
        base_role: str = "fleet/ed",
        batch: int = 64,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        # Imported here so the pure streaming machinery stays usable
        # without the simulation stack (tests, benches).
        from repro.chip.acquire import EncryptionWorkload, GroupMember
        from repro.experiments.campaign import (
            DEFAULT_KEY,
            ED_DECIMATE,
            ED_PERIOD,
            WARMUP_WINDOWS,
            acquisition_engine,
            segment_ed_windows,
        )

        self._workload_cls = EncryptionWorkload
        self._member_cls = GroupMember
        self._segment = segment_ed_windows
        self._key = DEFAULT_KEY
        self._period = ED_PERIOD
        self._warmup = WARMUP_WINDOWS
        self._decimate = ED_DECIMATE
        self.chip = chip
        self.fleet = tuple(fleet)
        self.plan = plan
        self.receiver = receiver
        self.base_role = base_role
        self.batch = batch
        self.metrics = metrics
        self._engine = acquisition_engine(chip, scenario)

    def generate(self, index: int, lo: int, hi: int) -> dict[str, np.ndarray]:
        n = hi - lo
        members = [
            self._member_cls(
                name=chip_id,
                workload=self._workload_cls(
                    self.chip.aes, self._key, period=self._period
                ),
                batch=self.batch,
                trojan_enables=tuple(enables),
                rng_role=chunk_role(
                    f"{self.base_role}/{chip_id}", self.plan, index
                ),
            )
            for chip_id, enables in self.fleet
        ]
        windows_per_col = -(-n // self.batch) + self._warmup
        results = self._engine.acquire_group(
            members,
            n_cycles=windows_per_col * self._period,
            receivers=(self.receiver,),
        )
        return {
            chip_id: self._segment(
                results[chip_id].traces[self.receiver],
                batch=self.batch,
                n_traces=n,
                spc=self.chip.config.samples_per_cycle,
            )
            for chip_id, _ in self.fleet
        }


class StreamingTraceProducer:
    """Background chunk generator with bounded look-ahead.

    One producer serves every chip in the fleet: a chunk is generated
    once (lane-packed across chips) and handed to each chip's feed by
    reference.  The generation thread runs at most ``prefetch`` chunks
    past the slowest consumer's watermark; :meth:`rows` blocks until
    the needed chunk exists (stall time lands in
    ``producer.wait.seconds``).  Chunks the watermarks have passed are
    freed; a request *below* a freed chunk (only the post-run one-shot
    re-evaluation does this) regenerates it on demand — chunks are
    pure functions of ``(source, index)``, so the answer is identical.
    """

    def __init__(
        self,
        source,
        chip_ids,
        n_windows: int,
        chunk: int = DEFAULT_CHUNK_WINDOWS,
        prefetch: int = DEFAULT_PREFETCH,
        metrics: MetricsRegistry | None = None,
        start_chunk: int = 0,
        on_chunk=None,
    ) -> None:
        """
        Parameters
        ----------
        source:
            Object with ``generate(index, lo, hi) -> {chip_id: rows}``.
        chip_ids:
            Fleet membership; every generated chunk must cover it.
        n_windows, chunk:
            The :class:`ChunkPlan` (windows per chip, windows per
            chunk).
        prefetch:
            Chunks generated ahead of the slowest consumer (>= 1;
            ``2`` = double buffering).
        metrics:
            Sink for the ``producer.*`` instruments (optional).
        start_chunk:
            First chunk to generate — a resumed run passes the
            checkpoint's producer cursor so generation picks up at the
            first chunk any pending batch still needs.
        on_chunk:
            Optional ``f(index, lo, hi, {chip: rows})`` called once
            per freshly generated chunk, from the producer thread —
            the campaign layer's incremental one-shot accumulator.
        """
        if prefetch < 1:
            raise ExperimentError(
                f"prefetch must be >= 1, got {prefetch}"
            )
        self.plan = ChunkPlan(n_windows=n_windows, chunk=chunk)
        self.chip_ids = list(chip_ids)
        if not self.chip_ids:
            raise ExperimentError("producer needs at least one chip")
        if not 0 <= start_chunk < self.plan.n_chunks:
            raise ExperimentError(
                f"start chunk {start_chunk} out of range "
                f"[0, {self.plan.n_chunks})"
            )
        self.source = source
        self.prefetch = prefetch
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.start_chunk = start_chunk
        self._on_chunk = on_chunk
        self._cond = threading.Condition()
        self._chunks: dict[int, dict[str, np.ndarray]] = {}
        self._next_gen = start_chunk
        # Highest chunk a consumer is blocked on: generation may run
        # past the prefetch window to satisfy it (reordered/duplicated
        # deliveries can reference slightly ahead of the watermarks,
        # and demand-driven generation must never deadlock on the
        # look-ahead gate).
        self._demand = start_chunk
        start_lo = self.plan.bounds(start_chunk)[0]
        self._watermarks = {c: start_lo for c in self.chip_ids}
        self._error: BaseException | None = None
        self._closed = False
        self._started = False
        # Serialises source.generate between the producer thread and
        # on-demand regeneration (post-run one-shot gathers).
        self._gen_lock = threading.Lock()
        self._thread = threading.Thread(
            target=self._generate_loop,
            name="fleet-trace-producer",
            daemon=True,
        )

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "StreamingTraceProducer":
        if not self._started:
            self._started = True
            self._thread.start()
        return self

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        if self._started:
            self._thread.join(timeout=30)

    def __enter__(self) -> "StreamingTraceProducer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def n_windows(self) -> int:
        return self.plan.n_windows

    def source_for(self, chip_id: str) -> "ProducerTraceSource":
        """This chip's :class:`~repro.fleet.feed.TraceSource` view."""
        if chip_id not in self._watermarks:
            raise ExperimentError(
                f"unknown chip {chip_id!r}; producer serves "
                f"{self.chip_ids}"
            )
        return ProducerTraceSource(self, chip_id)

    # -- generation ----------------------------------------------------
    def _min_needed_chunk(self) -> int:
        return self.plan.chunk_of(min(self._watermarks.values()))

    def _generate_loop(self) -> None:
        plan = self.plan
        try:
            while True:
                with self._cond:
                    while not self._closed and not (
                        self._next_gen < plan.n_chunks
                        and (
                            self._next_gen - self._min_needed_chunk()
                            < self.prefetch + 1
                            or self._next_gen <= self._demand
                        )
                    ):
                        self._cond.wait()
                    if self._closed:
                        return
                    if self._next_gen >= plan.n_chunks:
                        return
                    index = self._next_gen
                lo, hi = plan.bounds(index)
                t0 = time.perf_counter()
                with self._gen_lock:
                    data = self.source.generate(index, lo, hi)
                self.metrics.histogram("producer.chunk.seconds").observe(
                    time.perf_counter() - t0
                )
                missing = [c for c in self.chip_ids if c not in data]
                if missing:
                    raise ExperimentError(
                        f"chunk {index} is missing chips {missing}"
                    )
                if self._on_chunk is not None:
                    self._on_chunk(index, lo, hi, data)
                self.metrics.counter("producer.chunks").inc()
                self.metrics.counter("producer.windows").inc(hi - lo)
                with self._cond:
                    self._chunks[index] = data
                    self._next_gen = index + 1
                    buffered = sum(
                        self.plan.bounds(k)[1] - self.plan.bounds(k)[0]
                        for k in self._chunks
                    )
                    self.metrics.gauge("producer.buffered_chunks").max(
                        len(self._chunks)
                    )
                    self.metrics.gauge("producer.buffered_windows").max(
                        buffered
                    )
                    self._cond.notify_all()
        except BaseException as exc:  # surfaced at the next rows() call
            with self._cond:
                self._error = exc
                self._cond.notify_all()

    def _chunk_data(self, index: int) -> dict[str, np.ndarray]:
        """One chunk's ``{chip: rows}``, regenerating if freed."""
        with self._cond:
            data = self._chunks.get(index)
        if data is not None:
            return data
        lo, hi = self.plan.bounds(index)
        with self._gen_lock:
            return self.source.generate(index, lo, hi)

    def _chunk_rows(self, index: int, chip_id: str) -> np.ndarray:
        return self._chunk_data(index)[chip_id]

    def _await_generated(self, kmax: int) -> None:
        """Block until every chunk ``<= kmax`` has been generated."""
        if not self._started:
            raise ExperimentError(
                "producer not started; call start() (or use it as a "
                "context manager) before streaming"
            )
        with self._cond:
            if self._next_gen <= kmax and self._error is None:
                self._demand = max(self._demand, kmax)
                self._cond.notify_all()
                t0 = time.perf_counter()
                while self._next_gen <= kmax and self._error is None \
                        and not self._closed:
                    self._cond.wait()
                self.metrics.histogram("producer.wait.seconds").observe(
                    time.perf_counter() - t0
                )
            if self._error is not None:
                raise ExperimentError(
                    "trace producer failed"
                ) from self._error
            if self._next_gen <= kmax:
                raise ExperimentError(
                    "producer closed before the stream completed"
                )

    # -- the consumer side ---------------------------------------------
    def chunk(self, index: int) -> dict[str, np.ndarray]:
        """One whole chunk (every chip), blocking on generation.

        The sharded front-end's hand-off: it pulls chunks in order,
        persists them as lane-stacked stream-store segments and ships
        the refs in ``APPEND`` frames.
        """
        if not 0 <= index < self.plan.n_chunks:
            raise ExperimentError(
                f"chunk index {index} out of range "
                f"[0, {self.plan.n_chunks})"
            )
        self._await_generated(index)
        return self._chunk_data(index)

    def join(self) -> None:
        """Block until every chunk has been generated.

        After a completed run this guarantees the ``on_chunk`` hook has
        observed the whole campaign — trailing chunks whose windows the
        link dropped are still generated (they are part of the
        campaign's definition), just never gathered.
        """
        self._await_generated(self.plan.n_chunks - 1)

    def rows(self, chip_id: str, seqs: np.ndarray) -> np.ndarray:
        """Rows for *seqs* of *chip_id*, blocking on generation."""
        seqs = np.asarray(seqs, dtype=np.intp)
        n = seqs.shape[0]
        if n == 0:
            raise ExperimentError("empty row request")
        kmax = self.plan.chunk_of(int(seqs.max()))
        self._await_generated(kmax)
        kmin = self.plan.chunk_of(int(seqs.min()))
        if kmin == kmax:
            rows = self._chunk_rows(kmax, chip_id)
            lo = self.plan.bounds(kmax)[0]
            local = seqs - lo
            if int(local[-1]) - int(local[0]) == n - 1 and np.array_equal(
                local, np.arange(local[0], local[0] + n)
            ):
                view = rows[int(local[0]):int(local[0]) + n]
                if view.flags.writeable:
                    view.flags.writeable = False
                return view
            return rows[local]
        pieces: dict[int, np.ndarray] = {
            int(k): self._chunk_rows(int(k), chip_id)
            for k in range(kmin, kmax + 1)
        }
        sample = next(iter(pieces.values()))
        out = np.empty((n, sample.shape[1]), dtype=sample.dtype)
        owner = seqs // self.plan.chunk
        for k, rows_k in pieces.items():
            mask = owner == k
            if mask.any():
                out[mask] = rows_k[seqs[mask] - self.plan.bounds(k)[0]]
        return out

    def advance(self, chip_id: str, watermark: int) -> None:
        """One chip's feed guarantees no gather below *watermark*."""
        with self._cond:
            if watermark > self._watermarks[chip_id]:
                self._watermarks[chip_id] = int(watermark)
                floor = min(self._watermarks.values())
                for k in [
                    k for k in self._chunks
                    if self.plan.bounds(k)[1] <= floor
                ]:
                    del self._chunks[k]
                self._cond.notify_all()

    def release_through(self, watermark: int) -> None:
        """Every chip is done with windows below *watermark*.

        The sharded front-end calls this after persisting a chunk as a
        segment file — from then on the shards read the memmap, so the
        producer's in-memory copy can go.
        """
        for chip_id in self.chip_ids:
            self.advance(chip_id, watermark)

    # -- checkpointing -------------------------------------------------
    def state_dict(self) -> dict:
        """Producer cursor state, JSON-encodable.

        ``next_chunk`` is the first chunk any *future* delivery still
        needs (the slowest consumer watermark's chunk) — a resumed
        producer passes it as ``start_chunk`` and regenerates nothing
        before it.
        """
        with self._cond:
            return {
                "chunk": self.plan.chunk,
                "n_windows": self.plan.n_windows,
                "next_chunk": self._min_needed_chunk(),
            }


class ProducerTraceSource(TraceSource):
    """One chip's view of a shared :class:`StreamingTraceProducer`."""

    def __init__(
        self, producer: StreamingTraceProducer, chip_id: str
    ) -> None:
        self.producer = producer
        self.chip_id = chip_id

    @property
    def n_windows(self) -> int:
        return self.producer.n_windows

    def gather(self, seqs: np.ndarray) -> np.ndarray:
        return self.producer.rows(self.chip_id, seqs)

    def advance(self, watermark: int) -> None:
        self.producer.advance(self.chip_id, watermark)
