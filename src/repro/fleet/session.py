"""Per-chip monitor sessions: instrumented, checkpointable streaming.

A :class:`MonitorSession` wraps one :class:`~repro.framework.monitor.
RuntimeMonitor` for one fleet chip and adds what a long-running
service needs on top of the alarm logic:

* **stage instrumentation** — feature extraction and the separation
  test are timed separately into the shared metrics registry, and
  ingestion/alarm/anomaly counts are surfaced per chip;
* **stream accounting** — sequence-number gaps (missing windows) and
  regressions (out-of-order delivery) are counted, never silently
  absorbed;
* **checkpoint/resume** — :meth:`state_dict` / :meth:`from_state`
  round-trip the complete mutable state through JSON-encodable
  primitives, bit-identically (the monitor's running feature sum and
  deque serialise exactly; see :meth:`RuntimeMonitor.state_dict`).

Sessions default to the **floor-calibrated** alarm threshold
(:func:`floor_scaled_threshold`): the detector's bootstrapped
split-half separation floor, rescaled from half-set means to
W-window means.  Unlike the monitor's default analytic three-sigma
envelope, this keeps the streaming decision consistent with the
one-shot detector's ``separation > separation_floor`` rule — a
windowed mean over a long Trojan-active stream converges to the same
separation the one-shot evaluation measures, so the two verdicts agree
(the property the fleet CLI's consistency check enforces).
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.errors import AnalysisError
from repro.fleet.feed import WindowBatch
from repro.obs import active_metrics
from repro.obs.journal import EventJournal
from repro.obs.metrics import MetricsRegistry
from repro.framework.evaluator import RuntimeTrustEvaluator
from repro.framework.monitor import AlarmEvent, RuntimeMonitor


def floor_scaled_threshold(detector, window: int) -> float:
    """Bootstrap separation floor rescaled to a W-window sliding mean.

    The fitted floor bounds the distance two independent half-set
    means (n/2 golden traces each) reach by sampling alone — an error
    scale of ``d_rms * sqrt(4 / n)``.  A W-window sliding mean
    compared against the full-set fingerprint fluctuates at
    ``d_rms * sqrt(1/W + 1/n)``; the ratio of the two converts the
    bootstrapped (not analytic) envelope to the monitor's geometry:

    ``thr(W) = floor * sqrt((1/W + 1/n) * n / 4)``.

    Registry detectors without golden statistics (the reference-free
    plugins) provide their own window-scaled envelope via
    ``floor_threshold(window)`` instead.
    """
    floor = getattr(detector, "separation_floor", None)
    golden = getattr(detector, "golden_distances", None)
    if floor is None or golden is None:
        if hasattr(detector, "floor_threshold"):
            return float(detector.floor_threshold(window))
        raise AnalysisError("detector used before fit()")
    n = golden.shape[0]
    scale = math.sqrt((1.0 / window + 1.0 / n) * n / 4.0)
    return float(floor * scale)


class MonitorSession:
    """One chip's streaming monitor inside a fleet run."""

    def __init__(
        self,
        chip_id: str,
        evaluator: RuntimeTrustEvaluator,
        window: int = 256,
        confirm: int = 3,
        threshold: float | str | None = "floor",
        metrics: MetricsRegistry | None = None,
        journal: EventJournal | None = None,
    ) -> None:
        """
        Parameters
        ----------
        chip_id:
            Fleet-unique stream identity.
        evaluator:
            Trained evaluator shared across the fleet (the golden
            fingerprint is chip-design-wide, not per-instance).
        window, confirm:
            Sliding-window length and alarm hysteresis, as in
            :class:`RuntimeMonitor`.
        threshold:
            ``"floor"`` (default) uses :func:`floor_scaled_threshold`;
            ``None`` keeps the monitor's analytic envelope; a float is
            used verbatim.
        metrics, journal:
            Shared observability sinks; ``None`` creates private ones.
        """
        if threshold == "floor":
            threshold = floor_scaled_threshold(evaluator.detector, window)
        elif isinstance(threshold, str):
            raise AnalysisError(
                f"threshold must be 'floor', None or a float, "
                f"got {threshold!r}"
            )
        self.chip_id = chip_id
        self.evaluator = evaluator
        self.monitor = RuntimeMonitor(
            evaluator, window=window, confirm=confirm, threshold=threshold
        )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.journal = journal if journal is not None else EventJournal()
        self._last_seq: int | None = None
        self.windows_ingested = 0
        self.gaps = 0
        self.out_of_order = 0
        # Lazily-cached accounting counters (the registry lookup is
        # measurable on the fleet hot path, the instruments are not).
        self._acct_counters: tuple | None = None

    # ------------------------------------------------------------------
    def ingest(self, batch: WindowBatch) -> list[AlarmEvent]:
        """Feed one arrival batch through the monitor.

        Features for the whole batch are extracted in one call (timed
        as ``stage.features.seconds``), then fed row-by-row through the
        O(1) sliding-window separation test (timed as
        ``stage.separation.seconds``).  Every alarm is journalled with
        the chip id and the source sequence number that tripped it.
        """
        if batch.chip_id != self.chip_id:
            raise AnalysisError(
                f"session {self.chip_id!r} fed batch for {batch.chip_id!r}"
            )
        if len(batch) == 0:
            return []
        start = time.perf_counter()
        with self.metrics.time("stage.features.seconds"):
            feats = self.evaluator.detector.features(batch.traces)
        with self.metrics.time("stage.separation.seconds"):
            events = self.monitor.observe_features(feats)
        self.metrics.histogram(
            f"chip.{self.chip_id}.scoring.seconds"
        ).observe(time.perf_counter() - start)
        self.metrics.counter("fleet.scoring.sequential").inc(len(batch))
        shared = active_metrics()
        if shared is not self.metrics:
            shared.counter("fleet.scoring.sequential").inc(len(batch))
        self._finish_batch(batch, events)
        return events

    def _finish_batch(
        self, batch: WindowBatch, events: list[AlarmEvent]
    ) -> None:
        """Post-scoring bookkeeping shared by both scoring engines.

        Stream accounting first, then alarm counters and journal
        records — the exact order :meth:`ingest` always used.  The
        batched engine (:class:`~repro.framework.batched.
        BatchedFleetMonitor`) computes the accounting verdicts for a
        whole tick in one vectorised pass and lands them through the
        same :meth:`_apply_accounting` / :meth:`_journal_alarms` pair,
        so both scoring modes produce the same counters and the same
        journal stream.
        """
        self._account(batch)
        self._journal_alarms(batch, events)

    def _journal_alarms(
        self, batch: WindowBatch, events: list[AlarmEvent]
    ) -> None:
        """Alarm counters plus journal records for one scored batch."""
        if events:
            self.metrics.counter("fleet.alarms").inc(len(events))
            self.metrics.counter(f"chip.{self.chip_id}.alarms").inc(
                len(events)
            )
            for event in events:
                # The seq that completed the confirmation streak: the
                # event's window_index counts this session's ingested
                # windows, so it maps into this batch.
                offset = event.window_index - (
                    self.windows_ingested - len(batch)
                ) - 1
                seq = batch.seqs[offset] if 0 <= offset < len(batch) else None
                self.journal.record(
                    "alarm",
                    chip=self.chip_id,
                    window_index=event.window_index,
                    seq=seq,
                    separation=event.separation,
                    threshold=event.threshold,
                )

    def _account(self, batch: WindowBatch) -> None:
        # Vectorised sequence accounting: each seq is compared against
        # the running maximum of everything before it (gap if it skips
        # past, out-of-order if it regresses) — same verdicts as the
        # old per-seq Python loop.
        seqs = batch.seq_array
        if seqs is None:
            seqs = np.asarray(batch.seqs, dtype=np.int64)
        if self._last_seq is not None:
            base = self._last_seq
            first = 0
        else:
            base = int(seqs[0])
            first = 1
        prev_max = np.maximum.accumulate(
            np.concatenate(([base], seqs[:-1]))
        )
        n_gaps = int(np.count_nonzero(seqs[first:] > prev_max[first:] + 1))
        n_ooo = int(np.count_nonzero(seqs[first:] <= prev_max[first:]))
        self._apply_accounting(
            len(batch), n_gaps, n_ooo, int(max(prev_max[-1], seqs[-1]))
        )

    def _apply_accounting(
        self, n: int, n_gaps: int, n_ooo: int, last_seq: int
    ) -> None:
        """Land one batch's stream-accounting verdicts.

        The sequential path funnels :meth:`_account`'s per-batch
        verdicts through here; the batched engine computes a whole
        tick's verdicts in one vectorised pass
        (:meth:`~repro.framework.batched.BatchedFleetMonitor.
        _account_tick`) and lands them per session — identical counter
        increments and attributes either way.
        """
        self.windows_ingested += n
        counters = self._acct_counters
        if counters is None:
            counters = self._acct_counters = (
                self.metrics.counter("fleet.windows.ingested"),
                self.metrics.counter(f"chip.{self.chip_id}.windows"),
            )
        counters[0].inc(n)
        counters[1].inc(n)
        if n_gaps:
            self.gaps += n_gaps
            self.metrics.counter(f"chip.{self.chip_id}.gaps").inc(n_gaps)
        if n_ooo:
            self.out_of_order += n_ooo
            self.metrics.counter(
                f"chip.{self.chip_id}.out_of_order"
            ).inc(n_ooo)
        self._last_seq = last_seq

    # ------------------------------------------------------------------
    @property
    def alarmed(self) -> bool:
        """True once any alarm has fired on this stream."""
        return bool(self.monitor.alarms)

    @property
    def first_alarm(self) -> AlarmEvent | None:
        return self.monitor.alarms[0] if self.monitor.alarms else None

    def current_separation(self) -> float:
        return self.monitor.current_separation()

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Complete mutable session state, JSON-encodable.

        Restoring via :meth:`from_state` against the same evaluator
        resumes the stream bit-identically — same future alarms (same
        indices and separations) from the same remaining windows.
        """
        return {
            "chip_id": self.chip_id,
            "last_seq": self._last_seq,
            "windows_ingested": self.windows_ingested,
            "gaps": self.gaps,
            "out_of_order": self.out_of_order,
            "monitor": self.monitor.state_dict(),
        }

    @classmethod
    def from_state(
        cls,
        state: dict,
        evaluator: RuntimeTrustEvaluator,
        metrics: MetricsRegistry | None = None,
        journal: EventJournal | None = None,
    ) -> "MonitorSession":
        """Rebuild a session mid-stream from :meth:`state_dict` output."""
        monitor_state = state["monitor"]
        session = cls(
            state["chip_id"],
            evaluator,
            window=int(monitor_state["window"]),
            confirm=int(monitor_state["confirm"]),
            threshold=float(monitor_state["threshold"]),
            metrics=metrics,
            journal=journal,
        )
        session.monitor = RuntimeMonitor.from_state(monitor_state, evaluator)
        session._last_seq = state["last_seq"]
        session.windows_ingested = int(state["windows_ingested"])
        session.gaps = int(state["gaps"])
        session.out_of_order = int(state["out_of_order"])
        return session
