"""Per-chip trace streams with arrival batching and fault injection.

A deployed monitor never sees a tidy trace matrix: windows arrive in
transport batches, and the telemetry link between a chip's sensor and
the fleet service loses, repeats and reorders them.  :class:`TraceFeed`
replays a trace campaign (anything the acquisition/cache layers
produce, usually via :func:`repro.experiments.campaign.
get_or_generate_traces`) as exactly that kind of stream: window rows
delivered in :class:`WindowBatch` chunks, each row tagged with its
source sequence number, with deterministic injected fault points
(dropped / duplicated / out-of-order windows) drawn from the library's
seeded RNG streams.

The delivery schedule is computed eagerly from ``(seed, chip_id)``
alone, so two feeds over the same campaign are identical — the
property the scheduler's checkpoint/resume support leans on
(:meth:`TraceFeed.batch_at` is random access).

Where the rows themselves come from is a :class:`TraceSource`.  The
classic mode wraps a prematerialised campaign matrix
(:class:`MatrixTraceSource` — memmapped cache hits included); the
streaming mode pulls rows on demand from a live producer
(:class:`~repro.fleet.producer.ProducerTraceSource`) or, shard-side,
from incrementally appended stream-store segments
(:class:`~repro.io.store.SegmentedStream`).  The schedule is a pure
function of ``(n_windows, faults, seed, chip_id)`` — no trace bytes
involved — so every source yields the same delivery order and the
same accounting, which is what makes ``--ingest=stream`` bit-identical
to ``--ingest=replay``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ExperimentError
from repro.rng import derive


@dataclass(frozen=True)
class FaultSpec:
    """Per-window fault probabilities on the chip-to-service link."""

    #: Probability a window is lost in transit (never delivered).
    drop: float = 0.0
    #: Probability a window is delivered twice (back to back).
    duplicate: float = 0.0
    #: Probability a delivered window swaps with its successor.
    reorder: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "reorder"):
            p = getattr(self, name)
            if not 0.0 <= p < 1.0:
                raise ExperimentError(
                    f"fault probability {name} must be in [0, 1), got {p}"
                )

    @property
    def any(self) -> bool:
        return self.drop > 0 or self.duplicate > 0 or self.reorder > 0


#: The clean link (no injected faults).
NO_FAULTS = FaultSpec()


@dataclass(eq=False)
class WindowBatch:
    """One arrival batch of trace windows for one chip."""

    chip_id: str
    #: Source window index of each row (post-fault delivery order).
    seqs: tuple[int, ...]
    #: ``(len(seqs), samples)`` trace rows, delivery order.
    traces: np.ndarray
    #: ``seqs`` as an int array, for accounting hot paths (optional —
    #: consumers fall back to converting ``seqs``).
    seq_array: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.seqs)


def _delivery_schedule(
    n: int, faults: FaultSpec, rng: np.random.Generator
) -> tuple[list[int], list[int], int, int]:
    """Delivered source indices plus (dropped, duplicated, reordered).

    Draw order is fixed (drop, duplicate, reorder) so a schedule is a
    pure function of ``(n, faults, rng stream)``.  Drop wins over
    duplicate for the same window; reorder swaps adjacent *delivered*
    positions, skipping overlaps left to right.
    """
    drop_mask = rng.random(n) < faults.drop
    dup_mask = rng.random(n) < faults.duplicate
    delivered: list[int] = []
    dropped: list[int] = []
    duplicated = 0
    for seq in range(n):
        if drop_mask[seq]:
            dropped.append(seq)
            continue
        delivered.append(seq)
        if dup_mask[seq]:
            delivered.append(seq)
            duplicated += 1
    swap_draw = rng.random(max(len(delivered) - 1, 0))
    reordered = 0
    i = 0
    while i < len(delivered) - 1:
        if swap_draw[i] < faults.reorder:
            delivered[i], delivered[i + 1] = delivered[i + 1], delivered[i]
            reordered += 1
            i += 2
        else:
            i += 1
    return delivered, dropped, duplicated, reordered


class TraceSource:
    """Where a feed's window rows live.

    A source exposes the campaign's pre-fault window count and serves
    rows by source sequence number.  :meth:`advance` is a *watermark
    hint*: the feed guarantees no later :meth:`gather` will ask for a
    sequence below the watermark, which is what lets a streaming
    source free already-scored chunks (a matrix source ignores it).
    """

    @property
    def n_windows(self) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def gather(self, seqs: np.ndarray) -> np.ndarray:
        """Rows for *seqs* (delivery order), shape ``(len(seqs), S)``."""
        raise NotImplementedError  # pragma: no cover - interface

    def advance(self, watermark: int) -> None:
        """No future gather will need a sequence ``< watermark``."""


class MatrixTraceSource(TraceSource):
    """A prematerialised ``(n_windows, samples)`` campaign matrix."""

    def __init__(self, traces: np.ndarray) -> None:
        traces = np.atleast_2d(np.asarray(traces))
        if traces.ndim != 2 or traces.shape[0] < 1:
            raise ExperimentError(
                f"feed traces must be (n, samples), got {traces.shape}"
            )
        self.matrix = traces

    @property
    def n_windows(self) -> int:
        return self.matrix.shape[0]

    def gather(self, seqs: np.ndarray) -> np.ndarray:
        n = seqs.shape[0]
        # A batch no drop/duplicate/reorder fault touched selects a
        # contiguous ascending run — serve it as a read-only slice view
        # instead of a fancy-indexed copy, so memmapped campaign rows
        # stay on disk until the scoring engine actually reads them.
        if n and int(seqs[-1]) - int(seqs[0]) == n - 1 \
                and np.array_equal(seqs, np.arange(seqs[0], seqs[0] + n)):
            view = self.matrix[int(seqs[0]):int(seqs[0]) + n]
            if view.flags.writeable:
                view.flags.writeable = False
            return view
        return self.matrix[seqs]


class TraceFeed:
    """Replay of one chip's trace campaign as a batched stream."""

    def __init__(
        self,
        chip_id: str,
        traces,
        batch: int = 8,
        faults: FaultSpec | None = None,
        seed: int = 0,
    ) -> None:
        """
        Parameters
        ----------
        chip_id:
            Stream identity; also salts the fault-injection RNG role.
        traces:
            ``(n_windows, samples)`` campaign matrix (memmapped cache
            hits work unchanged; rows are only read), or any
            :class:`TraceSource` — a live producer, shard-side
            segments, ... — serving the same windows.
        batch:
            Windows per arrival batch (the last batch may be short).
        faults:
            Link fault probabilities; ``None`` means a clean link.
        seed:
            Parent seed of the fault-injection stream (derived through
            :func:`repro.rng.derive` with role ``fleet/feed/<chip_id>``).
        """
        if batch < 1:
            raise ExperimentError(f"batch must be >= 1, got {batch}")
        # Structural typing on purpose: repro.io.store.SegmentedStream
        # fulfils the source contract without importing the fleet layer.
        is_source = isinstance(traces, TraceSource) or (
            hasattr(traces, "gather") and hasattr(traces, "n_windows")
        )
        source = traces if is_source else MatrixTraceSource(traces)
        if source.n_windows < 1:
            raise ExperimentError(
                f"feed needs at least one window, got {source.n_windows}"
            )
        self.chip_id = chip_id
        self.batch = batch
        self.faults = faults or NO_FAULTS
        self.seed = seed
        self.source = source
        delivered, dropped, duplicated, reordered = _delivery_schedule(
            source.n_windows,
            self.faults,
            derive(seed, f"fleet/feed/{chip_id}"),
        )
        #: Source window indices in delivery order.
        self.delivered_seqs: tuple[int, ...] = tuple(delivered)
        #: Source window indices lost in transit (surfaced, never silent).
        self.dropped_seqs: tuple[int, ...] = tuple(dropped)
        self.duplicated = duplicated
        self.reordered = reordered
        # Same indices as an array: fancy-indexing with a list re-walks
        # it element by element on every batch_at call.
        self._delivered_arr = np.asarray(delivered, dtype=np.intp)
        # Suffix minimum of the delivered sequence stream: the lowest
        # source seq any batch >= i can still reference.  Feeds are
        # consumed in ascending batch order, so after serving batch i
        # the source may discard everything below
        # ``_suffix_min[(i + 1) * batch]`` — the watermark handed to
        # :meth:`TraceSource.advance`.
        if len(delivered):
            self._suffix_min = np.minimum.accumulate(
                self._delivered_arr[::-1]
            )[::-1]
        else:
            self._suffix_min = self._delivered_arr

    @property
    def source_traces(self) -> np.ndarray:
        """The underlying campaign matrix (pre-fault, read-only use).

        The sharded front-end persists this once per chip through
        :func:`repro.io.store.save_stream_store`; a shard rebuilding
        the feed from the saved matrix with the same ``(batch, faults,
        seed)`` recovers the identical delivery schedule.  Only
        matrix-backed feeds have one — a streaming source deliberately
        never holds the whole campaign.
        """
        if not isinstance(self.source, MatrixTraceSource):
            raise ExperimentError(
                f"feed {self.chip_id!r} is not matrix-backed "
                f"({type(self.source).__name__}); streaming feeds hand "
                "traces over as incremental segments, not one store"
            )
        return self.source.matrix

    @property
    def n_source_windows(self) -> int:
        """Windows in the underlying campaign (pre-fault)."""
        return self.source.n_windows

    @property
    def n_delivered(self) -> int:
        """Windows the link actually delivers (post-fault)."""
        return len(self.delivered_seqs)

    @property
    def n_batches(self) -> int:
        return -(-self.n_delivered // self.batch)

    def batch_at(self, index: int) -> WindowBatch:
        """The *index*-th arrival batch (random access, deterministic)."""
        if not 0 <= index < self.n_batches:
            raise ExperimentError(
                f"batch index {index} out of range [0, {self.n_batches})"
            )
        lo, hi = index * self.batch, (index + 1) * self.batch
        sel = self._delivered_arr[lo:hi]
        rows = self.source.gather(sel)
        n = len(self._delivered_arr)
        if hi < n:
            self.source.advance(int(self._suffix_min[hi]))
        else:
            self.source.advance(self.source.n_windows)
        return WindowBatch(
            chip_id=self.chip_id,
            seqs=self.delivered_seqs[lo:hi],
            traces=rows,
            seq_array=sel,
        )

    def low_watermark(self, index: int) -> int:
        """Lowest source seq any batch ``>= index`` still references.

        ``n_source_windows`` once *index* is past the last batch.  This
        is the cursor a mid-stream checkpoint records per chip: a
        resumed producer may start at the chunk holding the fleet-wide
        minimum, and no remaining delivery will look below it.
        """
        lo = index * self.batch
        if lo >= len(self._delivered_arr):
            return self.source.n_windows
        return int(self._suffix_min[lo])

    def seqs_at(self, index: int) -> tuple[int, ...]:
        """The *index*-th batch's sequence numbers, without trace rows.

        Drop accounting and the sharded front-end only need the seqs;
        this skips the fancy-indexed row copy :meth:`batch_at` pays
        (which materialises memmapped rows into memory).
        """
        if not 0 <= index < self.n_batches:
            raise ExperimentError(
                f"batch index {index} out of range [0, {self.n_batches})"
            )
        return self.delivered_seqs[index * self.batch:(index + 1) * self.batch]

    def __iter__(self):
        for i in range(self.n_batches):
            yield self.batch_at(i)

    def delivered_traces(self) -> np.ndarray:
        """Every delivered window row in delivery order.

        This is the exact trace multiset a one-shot evaluation of the
        stream would see — the fleet CLI's alarm-verdict consistency
        check evaluates it through the plain
        :class:`~repro.analysis.euclidean.EuclideanDetector`.
        """
        return np.asarray(self.source.gather(self._delivered_arr))
