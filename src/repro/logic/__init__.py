"""Gate-level logic substrate.

This subpackage provides everything needed to *be* the circuit under
test: a small 180 nm-flavoured standard-cell library
(:mod:`repro.logic.library`), a netlist data model
(:mod:`repro.logic.netlist`), structural composition helpers
(:mod:`repro.logic.builder`), a batch event-driven logic simulator
(:mod:`repro.logic.simulator`) and switching-activity recorders
(:mod:`repro.logic.activity`).

The AES design, the four digital Trojans and the A2 trigger divider are
all built on top of these primitives; the power and EM models consume
the per-cycle switching activity the simulator reports.
"""

from repro.logic.cells import CellKind, StdCell
from repro.logic.library import LIBRARY, get_cell, list_cells
from repro.logic.netlist import Instance, Net, Netlist
from repro.logic.builder import NetlistBuilder
from repro.logic.simulator import (
    CompiledNetlist,
    PackedState,
    SimulationState,
    extract_lanes,
    lane_slices,
    pack_bits,
    resolve_backend,
    unpack_bits,
)
from repro.logic.activity import (
    ActivityAccumulator,
    ToggleCountRecorder,
    TraceRecorder,
)
from repro.logic.stats import NetlistStats, netlist_stats
from repro.logic.verilog import netlist_to_verilog, write_verilog
from repro.logic.vcd import VcdWriter
from repro.logic.equivalence import EquivalenceReport, random_equivalence_check
from repro.logic.timing import TimingReport, analyze_timing

__all__ = [
    "CellKind",
    "StdCell",
    "LIBRARY",
    "get_cell",
    "list_cells",
    "Instance",
    "Net",
    "Netlist",
    "NetlistBuilder",
    "CompiledNetlist",
    "PackedState",
    "SimulationState",
    "extract_lanes",
    "lane_slices",
    "pack_bits",
    "resolve_backend",
    "unpack_bits",
    "ActivityAccumulator",
    "ToggleCountRecorder",
    "TraceRecorder",
    "NetlistStats",
    "netlist_stats",
    "netlist_to_verilog",
    "write_verilog",
    "VcdWriter",
    "EquivalenceReport",
    "random_equivalence_check",
    "TimingReport",
    "analyze_timing",
]
