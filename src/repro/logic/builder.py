"""Structural netlist composition helpers.

:class:`NetlistBuilder` wraps a :class:`~repro.logic.netlist.Netlist`
and offers the vocabulary a structural RTL designer expects: gates,
buses, registers, multiplexers, reduction trees, decoders, counters,
LFSRs and ROM planes.  The AES datapath generator and all five Trojan
generators are written exclusively in terms of these helpers, which is
what keeps their gate counts honest — every XOR in MixColumns is a real
``XOR2`` instance that the simulator toggles and the power model bills.

Bus convention: a bus is a plain ``list[str]`` of net names with **index
0 as the most significant bit**, matching the FIPS-197 byte order used
by :mod:`repro.crypto.aes`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, Iterator, Sequence

from repro.errors import NetlistError
from repro.logic.netlist import Netlist

Bus = list[str]


class NetlistBuilder:
    """Fluent construction facade over a :class:`Netlist`."""

    def __init__(self, name: str, group: str = "") -> None:
        self.netlist = Netlist(name)
        self._group = group
        self._counter = 0
        self._tie_cache: dict[tuple[str, str], str] = {}

    # ------------------------------------------------------------------
    # Naming and grouping
    # ------------------------------------------------------------------
    def _unique(self, hint: str) -> str:
        self._counter += 1
        return f"{hint}__{self._counter}"

    @property
    def group(self) -> str:
        """Group label stamped on instances created from now on."""
        return self._group

    @contextmanager
    def in_group(self, group: str) -> Iterator[None]:
        """Temporarily switch the instance group label."""
        previous = self._group
        self._group = group
        try:
            yield
        finally:
            self._group = previous

    # ------------------------------------------------------------------
    # Nets and ports
    # ------------------------------------------------------------------
    def net(self, hint: str = "n") -> str:
        """Create an internal net with a unique name derived from *hint*."""
        name = self._unique(hint)
        self.netlist.add_net(name)
        return name

    def input(self, name: str) -> str:
        """Create a named primary-input net."""
        self.netlist.add_input(name)
        return name

    def input_bus(self, name: str, width: int) -> Bus:
        """Create a *width*-bit primary-input bus (MSB first)."""
        return [self.input(f"{name}[{i}]") for i in range(width)]

    def mark_output(self, net: str) -> None:
        """Flag *net* as a primary output."""
        self.netlist.mark_output(net)

    def mark_output_bus(self, bus: Bus) -> None:
        """Flag every net of *bus* as a primary output."""
        for net in bus:
            self.netlist.mark_output(net)

    # ------------------------------------------------------------------
    # Constants
    # ------------------------------------------------------------------
    def const(self, value: int | bool) -> str:
        """Net tied to constant 0 or 1 (one tie cell per group/value)."""
        cell = "TIE1" if value else "TIE0"
        key = (self._group, cell)
        cached = self._tie_cache.get(key)
        if cached is not None:
            return cached
        out = self.net(cell.lower())
        self.netlist.add_instance(
            self._unique(cell.lower()), cell, {"Y": out}, group=self._group
        )
        self._tie_cache[key] = out
        return out

    def const_bus(self, value: int, width: int) -> Bus:
        """Bus of tie nets encoding *value* (MSB first)."""
        if value < 0 or value >= (1 << width):
            raise NetlistError(f"constant {value} does not fit in {width} bits")
        return [
            self.const((value >> (width - 1 - i)) & 1) for i in range(width)
        ]

    # ------------------------------------------------------------------
    # Primitive gates
    # ------------------------------------------------------------------
    def gate(self, cell_name: str, *in_nets: str, hint: str | None = None) -> str:
        """Instantiate *cell_name* over *in_nets*; return the output net."""
        from repro.logic.library import get_cell

        cell = get_cell(cell_name)
        out = self.net(hint or cell_name.lower())
        pins = {pin: net for pin, net in zip(cell.inputs, in_nets)}
        if len(pins) != len(cell.inputs):
            raise NetlistError(
                f"{cell_name} needs {len(cell.inputs)} inputs, got {len(in_nets)}"
            )
        pins[cell.output] = out
        self.netlist.add_instance(
            self._unique(cell_name.lower()), cell_name, pins, group=self._group
        )
        return out

    def buf(self, a: str) -> str:
        return self.gate("BUF", a)

    def inv(self, a: str) -> str:
        return self.gate("INV", a)

    def and2(self, a: str, b: str) -> str:
        return self.gate("AND2", a, b)

    def or2(self, a: str, b: str) -> str:
        return self.gate("OR2", a, b)

    def nand2(self, a: str, b: str) -> str:
        return self.gate("NAND2", a, b)

    def nor2(self, a: str, b: str) -> str:
        return self.gate("NOR2", a, b)

    def xor2(self, a: str, b: str) -> str:
        return self.gate("XOR2", a, b)

    def xnor2(self, a: str, b: str) -> str:
        return self.gate("XNOR2", a, b)

    def and3(self, a: str, b: str, c: str) -> str:
        return self.gate("AND3", a, b, c)

    def or3(self, a: str, b: str, c: str) -> str:
        return self.gate("OR3", a, b, c)

    def mux2(self, a: str, b: str, sel: str) -> str:
        """2:1 mux returning *a* when ``sel`` is 0 and *b* when 1."""
        return self.gate("MUX2", a, b, sel)

    # ------------------------------------------------------------------
    # Sequential elements
    # ------------------------------------------------------------------
    def dff(self, d: str, enable: str | None = None, init: int | bool = 0) -> str:
        """A D flip-flop on the global clock; returns the Q net.

        ``enable`` gates the capture (DFFE cell); ``init`` is the Q value
        after reset.
        """
        if enable is None:
            out = self.net("q")
            name = self._unique("dff")
            self.netlist.add_instance(
                name, "DFF", {"D": d, "Q": out}, group=self._group
            )
        else:
            out = self.net("q")
            name = self._unique("dffe")
            self.netlist.add_instance(
                name, "DFFE", {"D": d, "EN": enable, "Q": out}, group=self._group
            )
        if init:
            self.netlist.ff_init[name] = True
        return out

    def flop_into(
        self,
        d: str,
        q: str,
        enable: str | None = None,
        init: int | bool = 0,
    ) -> None:
        """Create a flip-flop driving the *pre-existing* net *q*.

        Useful for registers whose outputs must be referenced by
        combinational logic built before the register itself (state
        feedback paths).
        """
        if enable is None:
            name = self._unique("dff")
            self.netlist.add_instance(
                name, "DFF", {"D": d, "Q": q}, group=self._group
            )
        else:
            name = self._unique("dffe")
            self.netlist.add_instance(
                name, "DFFE", {"D": d, "EN": enable, "Q": q}, group=self._group
            )
        if init:
            self.netlist.ff_init[name] = True

    def register_bus(
        self,
        d_bus: Sequence[str],
        enable: str | None = None,
        init: int = 0,
    ) -> Bus:
        """Register a whole bus; *init* encodes per-bit reset values (MSB first)."""
        width = len(d_bus)
        return [
            self.dff(d, enable=enable, init=(init >> (width - 1 - i)) & 1)
            for i, d in enumerate(d_bus)
        ]

    # ------------------------------------------------------------------
    # Bus operators
    # ------------------------------------------------------------------
    def xor_bus(self, a: Sequence[str], b: Sequence[str]) -> Bus:
        """Bitwise XOR of two equal-width buses."""
        self._check_widths(a, b)
        return [self.xor2(x, y) for x, y in zip(a, b)]

    def and_bus(self, a: Sequence[str], b: Sequence[str]) -> Bus:
        self._check_widths(a, b)
        return [self.and2(x, y) for x, y in zip(a, b)]

    def mux_bus(self, a: Sequence[str], b: Sequence[str], sel: str) -> Bus:
        """Per-bit 2:1 mux (*a* when sel=0)."""
        self._check_widths(a, b)
        return [self.mux2(x, y, sel) for x, y in zip(a, b)]

    def inv_bus(self, a: Sequence[str]) -> Bus:
        return [self.inv(x) for x in a]

    @staticmethod
    def _check_widths(a: Sequence[str], b: Sequence[str]) -> None:
        if len(a) != len(b):
            raise NetlistError(f"bus width mismatch: {len(a)} vs {len(b)}")

    # ------------------------------------------------------------------
    # Reduction trees
    # ------------------------------------------------------------------
    def reduce_tree(self, op: str, nets: Sequence[str]) -> str:
        """Balanced binary reduction of *nets* with 2-input cell *op*."""
        if not nets:
            raise NetlistError("cannot reduce an empty net list")
        layer = list(nets)
        while len(layer) > 1:
            nxt: list[str] = []
            for i in range(0, len(layer) - 1, 2):
                nxt.append(self.gate(op, layer[i], layer[i + 1]))
            if len(layer) % 2:
                nxt.append(layer[-1])
            layer = nxt
        return layer[0]

    def and_tree(self, nets: Sequence[str]) -> str:
        return self.reduce_tree("AND2", nets)

    def or_tree(self, nets: Sequence[str]) -> str:
        return self.reduce_tree("OR2", nets)

    def xor_tree(self, nets: Sequence[str]) -> str:
        return self.reduce_tree("XOR2", nets)

    # ------------------------------------------------------------------
    # Medium-scale blocks
    # ------------------------------------------------------------------
    def decoder(self, sel: Sequence[str]) -> list[str]:
        """Full decoder: *n* select bits (MSB first) → ``2**n`` one-hot lines.

        Built recursively as the AND product of two half-decoders, which
        is how ROM/PLA address decoders are implemented in practice and
        keeps the gate count near ``2**n`` instead of ``n * 2**n``.
        """
        n = len(sel)
        if n == 0:
            raise NetlistError("decoder needs at least one select bit")
        if n == 1:
            return [self.inv(sel[0]), self.buf(sel[0])]
        half = n // 2
        high = self.decoder(sel[:half])
        low = self.decoder(sel[half:])
        lines: list[str] = []
        for h in high:
            for l in low:
                lines.append(self.and2(h, l))
        return lines

    def rom(self, address: Sequence[str], words: Sequence[int], width: int) -> Bus:
        """Combinational ROM: decoder + one OR plane per output bit.

        *words* holds ``2**len(address)`` integers of *width* bits; the
        returned bus is MSB first.  This is the S-box implementation
        style (decoded PLA), the dominant contributor to the AES gate
        count, as in the paper's 33 k-gate design.
        """
        n = len(address)
        if len(words) != (1 << n):
            raise NetlistError(
                f"ROM with {n} address bits needs {1 << n} words, "
                f"got {len(words)}"
            )
        lines = self.decoder(address)
        outputs: Bus = []
        for bit in range(width):
            shift = width - 1 - bit
            minterms = [
                lines[idx] for idx, word in enumerate(words) if (word >> shift) & 1
            ]
            if not minterms:
                outputs.append(self.const(0))
            elif len(minterms) == len(words):
                outputs.append(self.const(1))
            else:
                outputs.append(self.or_tree(minterms))
        return outputs

    def half_adder(self, a: str, b: str) -> tuple[str, str]:
        """Return ``(sum, carry)``."""
        return self.xor2(a, b), self.and2(a, b)

    def full_adder(self, a: str, b: str, cin: str) -> tuple[str, str]:
        """Return ``(sum, carry)``."""
        s1, c1 = self.half_adder(a, b)
        s2, c2 = self.half_adder(s1, cin)
        return s2, self.or2(c1, c2)

    def adder_bus(self, a: Sequence[str], b: Sequence[str]) -> tuple[Bus, str]:
        """Ripple-carry adder over MSB-first buses; returns (sum, carry_out)."""
        self._check_widths(a, b)
        carry = self.const(0)
        out_rev: list[str] = []
        for x, y in zip(reversed(a), reversed(b)):
            s, carry = self.full_adder(x, y, carry)
            out_rev.append(s)
        return list(reversed(out_rev)), carry

    def counter(
        self, width: int, enable: str | None = None, init: int = 0
    ) -> Bus:
        """Binary up-counter (MSB first); *init* is the post-reset value."""
        if init < 0 or init >= (1 << width):
            raise NetlistError(f"counter init {init} does not fit in {width} bits")
        one = self.const(1)
        qs: Bus = [self.net("cnt_q") for _ in range(width)]
        # Build increment logic q + 1 with a carry chain of AND gates.
        carry = one
        d_rev: list[str] = []
        for q in reversed(qs):
            d_rev.append(self.xor2(q, carry))
            carry = self.and2(q, carry)
        d_bus = list(reversed(d_rev))
        for i, (q, d) in enumerate(zip(qs, d_bus)):
            self.flop_into(
                d, q, enable=enable, init=(init >> (width - 1 - i)) & 1
            )
        return qs

    def lfsr(self, width: int, taps: Iterable[int], init: int = 1) -> Bus:
        """Fibonacci LFSR (MSB first), shifting towards the LSB.

        *taps* are bit positions (0 = MSB) XORed into the new MSB.  The
        reset state is *init*, which must be non-zero for a maximal
        XOR-feedback sequence.
        """
        taps = sorted(set(taps))
        if not taps:
            raise NetlistError("LFSR needs at least one tap")
        if any(t < 0 or t >= width for t in taps):
            raise NetlistError(f"LFSR taps {taps} out of range for width {width}")
        if init == 0:
            raise NetlistError("XOR-feedback LFSR must not reset to all zeros")
        qs: Bus = [self.net("lfsr_q") for _ in range(width)]
        feedback = self.xor_tree([qs[t] for t in taps]) if len(taps) > 1 else self.buf(qs[taps[0]])
        d_bus = [feedback] + qs[:-1]
        for i, (q, d) in enumerate(zip(qs, d_bus)):
            name = self._unique("dff")
            self.netlist.add_instance(
                name, "DFF", {"D": d, "Q": q}, group=self._group
            )
            if (init >> (width - 1 - i)) & 1:
                self.netlist.ff_init[name] = True
        return qs

    def mux_tree(self, values: Sequence[str], select: Sequence[str]) -> str:
        """N:1 multiplexer tree: pick ``values[select]`` (select MSB first).

        ``len(values)`` must equal ``2 ** len(select)``; costs
        ``len(values) - 1`` MUX2 cells.
        """
        if len(values) != (1 << len(select)):
            raise NetlistError(
                f"mux tree over {len(values)} values needs "
                f"{len(values).bit_length() - 1} select bits, got {len(select)}"
            )
        layer = list(values)
        for sel in reversed(select):  # LSB selects within adjacent pairs
            layer = [
                self.mux2(layer[i], layer[i + 1], sel)
                for i in range(0, len(layer), 2)
            ]
        return layer[0]

    def equals_const(self, bus: Sequence[str], value: int) -> str:
        """Single net that is 1 exactly when *bus* equals *value*."""
        width = len(bus)
        if value < 0 or value >= (1 << width):
            raise NetlistError(f"comparison value {value} does not fit in {width} bits")
        terms = []
        for i, net in enumerate(bus):
            bit = (value >> (width - 1 - i)) & 1
            terms.append(net if bit else self.inv(net))
        return self.and_tree(terms)

    def shift_register(self, data_in: str, length: int, enable: str | None = None) -> Bus:
        """Serial-in shift register; element 0 is the newest bit."""
        if length <= 0:
            raise NetlistError(f"shift register length must be positive, got {length}")
        stages: Bus = []
        current = data_in
        for _ in range(length):
            current = self.dff(current, enable=enable)
            stages.append(current)
        return stages

    # ------------------------------------------------------------------
    # Finishing
    # ------------------------------------------------------------------
    def build(self) -> Netlist:
        """Validate and return the underlying netlist."""
        self.netlist.validate()
        return self.netlist
