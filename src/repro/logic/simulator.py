"""Vectorised cycle-based logic simulator.

:class:`CompiledNetlist` lowers a :class:`~repro.logic.netlist.Netlist`
into flat numpy index arrays once, then executes clock cycles over a
whole *batch* of stimulus vectors simultaneously (one column per
plaintext).  Semantics are the standard synchronous zero-delay model:

* at every :meth:`step` the flip-flops capture the D values that were
  settled at the end of the previous cycle (honouring ``EN`` pins),
* new primary-input values are applied,
* combinational logic is evaluated level by level.

Each step reports, per instance and per batch column, whether the
instance's output net toggled.  That toggle matrix — together with each
instance's topological level, which approximates *when* within the
cycle the gate switches — is the sole interface between logic and the
power/EM models, mirroring how the paper couples Hspice currents to the
EM solver.

Two execution backends share one compiled netlist:

* ``bool`` — one byte per logic value, ``(num_nets, batch)`` bool
  arrays (:class:`SimulationState`).  The default for direct callers.
* ``packed`` — bit-sliced: 64 batch lanes per ``uint64`` word,
  ``(num_nets, ceil(batch/64))`` arrays (:class:`PackedState`), gates
  evaluated with bitwise ops on whole words.  8× smaller state and
  ~4× faster stepping at large batches; selected by the acquisition
  engine via :func:`resolve_backend` (``REPRO_SIM_BACKEND`` overrides,
  else packed when ``batch >= 64``).  Both backends follow the
  identical per-cycle toggle contract — unpacking a packed toggle word
  with :func:`unpack_bits` yields exactly the bool backend's matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

# BACKEND_ENV_VAR is re-exported here for backwards compatibility; its
# resolution lives in repro.config.
from repro.config import BACKEND_ENV_VAR, active_config
from repro.errors import SimulationError
from repro.logic.cells import CellKind, packed_function
from repro.logic.netlist import Netlist

BoolArray = np.ndarray

#: Batch lanes per machine word in the packed backend.
WORD_BITS = 64

#: Smallest batch at which ``auto`` resolves to the packed backend —
#: below one full word per net the packing overhead cannot pay off.
PACKED_BATCH_THRESHOLD = 64

#: Little-endian word dtype the pack/unpack helpers round-trip through,
#: so the lane order is fixed regardless of host byte order.
_WORD_LE = np.dtype("<u8")

_FULL_WORD = np.uint64(0xFFFFFFFFFFFFFFFF)


def resolve_backend(batch: int, backend: str | None = None) -> str:
    """Effective backend name (``"bool"`` or ``"packed"``) for *batch*.

    *backend* overrides; otherwise the active :class:`repro.config.
    ReproConfig` is consulted (``REPRO_SIM_BACKEND`` or a pinned
    config), and ``auto`` (the default) picks packed once *batch*
    reaches :data:`PACKED_BATCH_THRESHOLD`.
    """
    if backend is None:
        backend = active_config().sim_backend
    if backend not in ("auto", "bool", "packed"):
        raise SimulationError(
            f"unknown simulation backend {backend!r}; expected "
            "'auto', 'bool' or 'packed'"
        )
    if backend == "auto":
        return "packed" if batch >= PACKED_BATCH_THRESHOLD else "bool"
    return backend


def packed_words(batch: int) -> int:
    """Number of uint64 words holding *batch* bit lanes."""
    return -(-batch // WORD_BITS)


def pack_bits(values: np.ndarray) -> np.ndarray:
    """Pack a bool array along its last axis into uint64 lane words.

    ``(..., batch)`` bool → ``(..., packed_words(batch))`` uint64, lane
    ``b`` of the result living in bit ``b % 64`` of word ``b // 64``
    (little bit order).  Padding lanes beyond *batch* are zero.
    """
    arr = np.asarray(values, dtype=bool)
    if arr.ndim == 0:
        raise SimulationError("pack_bits needs at least one axis")
    nwords = packed_words(arr.shape[-1]) if arr.shape[-1] else 0
    packed = np.packbits(arr, axis=-1, bitorder="little")
    pad = nwords * 8 - packed.shape[-1]
    if pad:
        packed = np.concatenate(
            [packed, np.zeros(arr.shape[:-1] + (pad,), dtype=np.uint8)],
            axis=-1,
        )
    packed = np.ascontiguousarray(packed)
    return packed.view(_WORD_LE).astype(np.uint64, copy=False)


def unpack_bits(words: np.ndarray, batch: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: lane words back to a bool array.

    ``(..., nwords)`` uint64 → ``(..., batch)`` bool.  The result may be
    a view into a freshly allocated buffer; copy before mutating.
    """
    w = np.ascontiguousarray(words)
    nwords = w.shape[-1]
    if w.ndim > 1 and batch == nwords * WORD_BITS:
        # No padding lanes: flatten to 2-D so unpackbits runs one long
        # row per item instead of many short last-axis segments.
        flat = w.reshape(-1, nwords).astype(_WORD_LE, copy=False)
        bits = np.unpackbits(flat.view(np.uint8), axis=-1, bitorder="little")
        return bits.reshape(w.shape[:-1] + (batch,)).view(np.bool_)
    by = w.astype(_WORD_LE, copy=False).view(np.uint8)
    bits = np.unpackbits(by, axis=-1, bitorder="little")
    return bits[..., :batch].view(np.bool_)


def _lane_mask(batch: int) -> np.ndarray:
    """Word row with every valid lane bit set, padding lanes clear."""
    mask = np.zeros(packed_words(batch), dtype=np.uint64)
    full, rem = divmod(batch, WORD_BITS)
    mask[:full] = _FULL_WORD
    if rem:
        mask[full] = np.uint64((1 << rem) - 1)
    return mask


def lane_slices(batches) -> list[slice]:
    """Per-member batch-column slices of a lane-packed group.

    A multi-chip lane pack concatenates several members' stimulus
    columns into one batch (member 0 in lanes ``[0, b0)``, member 1 in
    ``[b0, b0 + b1)``, …); this returns the slice locating each
    member's columns in any ``(..., total_batch)`` array produced by
    the group run.
    """
    slices: list[slice] = []
    offset = 0
    for b in batches:
        if b <= 0:
            raise SimulationError(
                f"lane group batches must be positive, got {list(batches)}"
            )
        slices.append(slice(offset, offset + b))
        offset += b
    return slices


def extract_lanes(words: np.ndarray, start: int, count: int) -> np.ndarray:
    """Pull lanes ``[start, start + count)`` out of packed lane words.

    The inverse of lane-packing several members into shared uint64
    words: given any ``(..., nwords)`` packed array (state words,
    toggle matrices, recorded nets), returns a fresh
    ``(..., packed_words(count))`` array holding just that member's
    lanes, re-based at bit 0 with padding lanes cleared —
    ``unpack_bits(extract_lanes(w, s, c), c)`` equals
    ``unpack_bits(w, total)[..., s:s+c]`` exactly.
    """
    if start < 0 or count <= 0:
        raise SimulationError(
            f"invalid lane range [{start}, {start + count})"
        )
    w = np.asarray(words, dtype=np.uint64)
    n_out = packed_words(count)
    word0, shift = divmod(start, WORD_BITS)
    need = word0 + n_out + (1 if shift else 0)
    if need > w.shape[-1]:
        pad = np.zeros(
            w.shape[:-1] + (need - w.shape[-1],), dtype=np.uint64
        )
        w = np.concatenate([w, pad], axis=-1)
    if shift == 0:
        out = w[..., word0 : word0 + n_out].copy()
    else:
        out = (w[..., word0 : word0 + n_out] >> np.uint64(shift)) | (
            w[..., word0 + 1 : word0 + 1 + n_out]
            << np.uint64(WORD_BITS - shift)
        )
    out &= _lane_mask(count)
    return out


@dataclass
class SimulationState:
    """Mutable per-run simulator state.

    ``values`` has shape ``(num_nets, batch)`` and dtype bool; ``cycle``
    counts completed :meth:`CompiledNetlist.step` calls since reset.
    """

    values: np.ndarray
    cycle: int = 0

    @property
    def batch(self) -> int:
        """Number of stimulus vectors simulated in parallel."""
        return self.values.shape[1]


@dataclass
class PackedState:
    """Bit-sliced simulator state: 64 batch lanes per uint64 word.

    ``words`` has shape ``(num_nets, packed_words(batch))``; lane ``b``
    of a net lives in bit ``b % 64`` of word ``b // 64``.  Lanes at or
    beyond ``batch`` are padding whose content is unspecified — every
    reader must slice to *batch* after :func:`unpack_bits` (all the
    :class:`CompiledNetlist` accessors do).
    """

    words: np.ndarray
    batch: int
    cycle: int = 0

    @property
    def nwords(self) -> int:
        """Words per net row."""
        return self.words.shape[1]


@dataclass(frozen=True)
class _CombGroup:
    """All same-cell gates on one topological level, ready for gather."""

    cell_name: str
    function: object
    in_idx: tuple[np.ndarray, ...]
    out_idx: np.ndarray
    inst_idx: np.ndarray


class CompiledNetlist:
    """A netlist lowered to numpy arrays for batched simulation."""

    def __init__(self, netlist: Netlist) -> None:
        netlist.validate()
        self.netlist = netlist
        self.net_index: dict[str, int] = {
            name: i for i, name in enumerate(netlist.nets)
        }
        self.num_nets = len(self.net_index)

        instances = list(netlist.instances.values())
        self.instance_names: list[str] = [inst.name for inst in instances]
        self.instance_index: dict[str, int] = {
            name: i for i, name in enumerate(self.instance_names)
        }
        self.num_instances = len(instances)
        self.instance_out_idx = np.array(
            [self.net_index[inst.output_net] for inst in instances],
            dtype=np.int64,
        )

        levels = netlist.levelize()
        self.instance_levels = np.array(
            [levels.get(inst.name, 0) for inst in instances], dtype=np.int64
        )
        self.max_level = int(self.instance_levels.max(initial=0))

        # --- sequential elements -------------------------------------
        seq = [inst for inst in instances if inst.cell.is_sequential]
        self.seq_instance_idx = np.array(
            [self.instance_index[inst.name] for inst in seq], dtype=np.int64
        )
        self._seq_d_idx = np.array(
            [self.net_index[inst.pins["D"]] for inst in seq], dtype=np.int64
        )
        self._seq_q_idx = np.array(
            [self.net_index[inst.pins["Q"]] for inst in seq], dtype=np.int64
        )
        self._seq_en_idx = np.array(
            [
                self.net_index[inst.pins["EN"]] if "EN" in inst.pins else -1
                for inst in seq
            ],
            dtype=np.int64,
        )
        self._seq_has_en = self._seq_en_idx >= 0
        self._seq_init = np.array(
            [bool(netlist.ff_init.get(inst.name, False)) for inst in seq],
            dtype=bool,
        )

        # --- tie cells ------------------------------------------------
        tie_idx: list[int] = []
        tie_val: list[bool] = []
        for inst in instances:
            if inst.cell.is_tie:
                tie_idx.append(self.net_index[inst.output_net])
                tie_val.append(inst.cell.name == "TIE1")
        self._tie_idx = np.array(tie_idx, dtype=np.int64)
        self._tie_val = np.array(tie_val, dtype=bool)

        # --- combinational schedule ------------------------------------
        buckets: dict[tuple[int, str], list[int]] = {}
        for i, inst in enumerate(instances):
            if inst.cell.kind is not CellKind.COMBINATIONAL:
                continue
            key = (levels[inst.name], inst.cell.name)
            buckets.setdefault(key, []).append(i)
        self._schedule: list[_CombGroup] = []
        for (level, cell_name) in sorted(buckets):
            idxs = buckets[(level, cell_name)]
            members = [instances[i] for i in idxs]
            cell = members[0].cell
            in_idx = tuple(
                np.array(
                    [self.net_index[m.pins[pin]] for m in members],
                    dtype=np.int64,
                )
                for pin in cell.inputs
            )
            out_idx = np.array(
                [self.net_index[m.output_net] for m in members], dtype=np.int64
            )
            self._schedule.append(
                _CombGroup(
                    cell_name=cell_name,
                    function=cell.function,
                    in_idx=in_idx,
                    out_idx=out_idx,
                    inst_idx=np.array(idxs, dtype=np.int64),
                )
            )

        self._input_index = {
            name: self.net_index[name] for name in netlist.inputs
        }
        # Per-batch-size scratch buffers for _propagate's input gathers
        # (one set per comb group), so the hot loop stops allocating.
        self._scratch: dict[int, list[tuple[np.ndarray, ...]]] = {}
        # Packed-backend twins: word-wise cell functions (None marks a
        # function the packed backend cannot run) and uint64 scratch
        # keyed by words-per-net instead of batch.
        self._packed_functions: list[object | None] = [
            packed_function(grp.function) for grp in self._schedule
        ]
        self._scratch_packed: dict[int, list[tuple[np.ndarray, ...]]] = {}

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def reset(
        self,
        batch: int = 1,
        inputs: dict[str, BoolArray] | None = None,
        backend: str = "bool",
    ) -> SimulationState | PackedState:
        """Return a freshly reset state with combinational logic settled.

        Flip-flops take their ``ff_init`` values; unspecified primary
        inputs are 0.  *backend* selects the representation: ``"bool"``
        (the default, a :class:`SimulationState`), ``"packed"`` (a
        bit-sliced :class:`PackedState`) or ``"auto"``/``None`` to defer
        to :func:`resolve_backend`.  Callers that poke ``state.values``
        directly must stay on the bool backend.
        """
        if batch <= 0:
            raise SimulationError(f"batch size must be positive, got {batch}")
        if resolve_backend(batch, backend) == "packed":
            return self._reset_packed(batch, inputs)
        values = np.zeros((self.num_nets, batch), dtype=bool)
        state = SimulationState(values=values, cycle=0)
        if self._seq_q_idx.size:
            values[self._seq_q_idx] = self._seq_init[:, None]
        if self._tie_idx.size:
            values[self._tie_idx] = self._tie_val[:, None]
        self._apply_inputs(state, inputs)
        self._propagate(state)
        return state

    def _reset_packed(
        self,
        batch: int,
        inputs: dict[str, BoolArray] | None,
    ) -> PackedState:
        for grp, fn in zip(self._schedule, self._packed_functions):
            if fn is None:
                raise SimulationError(
                    f"cell function of {grp.cell_name!r} has no packed "
                    "variant; register one via repro.logic.cells or use "
                    "the bool backend"
                )
        words = np.zeros((self.num_nets, packed_words(batch)), dtype=np.uint64)
        state = PackedState(words=words, batch=batch, cycle=0)
        lanes = _lane_mask(batch)
        if self._seq_q_idx.size:
            words[self._seq_q_idx[self._seq_init]] = lanes
        if self._tie_idx.size:
            words[self._tie_idx[self._tie_val]] = lanes
        self._apply_inputs(state, inputs)
        self._propagate(state)
        return state

    def step(
        self,
        state: SimulationState | PackedState,
        inputs: dict[str, BoolArray] | None = None,
    ) -> BoolArray:
        """Advance one clock cycle; return the per-instance toggle matrix.

        On a bool state the returned array has shape
        ``(num_instances, batch)`` and is True where the instance's
        output net changed during this cycle.  On a packed state it is
        the same matrix as uint64 lane words,
        ``(num_instances, nwords)`` — ``unpack_bits(t, batch)`` recovers
        the bool form exactly (padding lanes are unspecified).
        """
        if isinstance(state, PackedState):
            return self._step_packed(state, inputs)
        values = state.values
        prev = values[self.instance_out_idx].copy()

        # Clock edge: capture D into Q (with enables) from settled values.
        if self._seq_q_idx.size:
            d_vals = values[self._seq_d_idx]
            q_vals = values[self._seq_q_idx]
            if self._seq_has_en.any():
                en_idx = np.where(self._seq_has_en, self._seq_en_idx, 0)
                en_vals = values[en_idx]
                en_vals[~self._seq_has_en] = True
            else:
                en_vals = np.ones_like(d_vals)
            values[self._seq_q_idx] = np.where(en_vals, d_vals, q_vals)

        self._apply_inputs(state, inputs)
        self._propagate(state)
        state.cycle += 1
        return values[self.instance_out_idx] != prev

    def _step_packed(
        self,
        state: PackedState,
        inputs: dict[str, BoolArray] | None,
    ) -> np.ndarray:
        words = state.words
        prev = words[self.instance_out_idx].copy()

        if self._seq_q_idx.size:
            d_vals = words[self._seq_d_idx]
            q_vals = words[self._seq_q_idx]
            if self._seq_has_en.any():
                en_idx = np.where(self._seq_has_en, self._seq_en_idx, 0)
                en_vals = words[en_idx]
                en_vals[~self._seq_has_en] = _FULL_WORD
            else:
                en_vals = np.full_like(d_vals, _FULL_WORD)
            # Lane-wise "EN ? D : Q" without np.where's element truthiness.
            words[self._seq_q_idx] = q_vals ^ ((q_vals ^ d_vals) & en_vals)

        self._apply_inputs(state, inputs)
        self._propagate(state)
        state.cycle += 1
        return words[self.instance_out_idx] ^ prev

    def run(
        self,
        state: SimulationState | PackedState,
        cycles: int,
        inputs: dict[str, BoolArray] | None = None,
    ) -> BoolArray:
        """Run *cycles* steps with constant inputs; return summed toggles.

        The result has shape ``(num_instances, batch)`` with integer
        toggle counts — handy for activity statistics.
        """
        total = np.zeros((self.num_instances, state.batch), dtype=np.int64)
        for _ in range(cycles):
            toggled = self.step(state, inputs)
            if isinstance(state, PackedState):
                toggled = unpack_bits(toggled, state.batch)
            total += toggled
            inputs = None  # only applied on the first cycle
        return total

    def output_values(self, state: SimulationState | PackedState) -> BoolArray:
        """Current output-net value of every instance, ``(n_inst, batch)``.

        Combined with a toggle matrix this distinguishes rising from
        falling output transitions (a cell that just toggled and now
        reads 1 rose) — the power model draws more VDD current on rises.
        On a packed state the matrix comes back as uint64 lane words,
        ``(n_inst, nwords)``, ready for bitwise combination with a
        packed toggle matrix.
        """
        if isinstance(state, PackedState):
            return state.words[self.instance_out_idx]
        return state.values[self.instance_out_idx]

    def clock_enable_values(
        self, state: SimulationState | PackedState
    ) -> BoolArray:
        """Per-sequential-instance clock-enable status, ``(n_seq, batch)``.

        Rows align with :attr:`seq_instance_idx`.  Plain DFFs are always
        clocked; DFFEs only when their EN pin is high — the model's
        stand-in for integrated clock gating, which is what keeps a
        dormant (clock-gated) Trojan free of clock-tree current.
        Packed states return lane words, ``(n_seq, nwords)``.
        """
        if isinstance(state, PackedState):
            if self._seq_d_idx.size == 0:
                return np.zeros((0, state.nwords), dtype=np.uint64)
            if self._seq_has_en.any():
                en_idx = np.where(self._seq_has_en, self._seq_en_idx, 0)
                en_vals = state.words[en_idx]
                en_vals[~self._seq_has_en] = _FULL_WORD
            else:
                en_vals = np.full(
                    (self._seq_d_idx.size, state.nwords), _FULL_WORD
                )
            return en_vals
        if self._seq_d_idx.size == 0:
            return np.zeros((0, state.batch), dtype=bool)
        if self._seq_has_en.any():
            en_idx = np.where(self._seq_has_en, self._seq_en_idx, 0)
            en_vals = state.values[en_idx].copy()
            en_vals[~self._seq_has_en] = True
        else:
            en_vals = np.ones((self._seq_d_idx.size, state.batch), dtype=bool)
        return en_vals

    def force_net(
        self,
        state: SimulationState | PackedState,
        net: str,
        value: BoolArray | bool,
        propagate: bool = True,
    ) -> None:
        """Override a net's value (fault injection, e.g. an A2 payload).

        With *propagate* the combinational logic re-settles so the
        forced value is visible downstream before the next clock edge.
        """
        idx = self.net_index.get(net)
        if idx is None:
            raise SimulationError(f"unknown net {net!r}")
        arr = np.asarray(value, dtype=bool)
        if arr.ndim == 0:
            arr = np.full(state.batch, bool(arr))
        if isinstance(state, PackedState):
            state.words[idx] = pack_bits(arr)
        else:
            state.values[idx] = arr
        if propagate:
            self._propagate(state)

    # ------------------------------------------------------------------
    # Value access
    # ------------------------------------------------------------------
    def read(
        self, state: SimulationState | PackedState, net: str
    ) -> BoolArray:
        """Current value of one net across the batch."""
        if isinstance(state, PackedState):
            return unpack_bits(
                state.words[self.net_index[net]], state.batch
            ).copy()
        return state.values[self.net_index[net]].copy()

    def read_bus(
        self, state: SimulationState | PackedState, bus: list[str]
    ) -> np.ndarray:
        """Bus values as an integer array of shape ``(batch,)``.

        Only valid for buses up to 63 bits; wider buses should be read
        with :meth:`read_bus_bits`.
        """
        if len(bus) > 63:
            raise SimulationError(
                f"read_bus supports up to 63 bits, got {len(bus)}; "
                "use read_bus_bits"
            )
        bits = self.read_bus_bits(state, bus)
        # MSB-first bit weights collapse the bus in one matmul.
        weights = np.int64(1) << np.arange(
            len(bus) - 1, -1, -1, dtype=np.int64
        )
        return weights @ bits.astype(np.int64)

    def read_bus_bits(
        self, state: SimulationState | PackedState, bus: list[str]
    ) -> np.ndarray:
        """Bus values as a bool array of shape ``(width, batch)``, MSB first."""
        idx = [self.net_index[n] for n in bus]
        if isinstance(state, PackedState):
            return np.ascontiguousarray(
                unpack_bits(state.words[idx], state.batch)
            )
        return state.values[idx].copy()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _apply_inputs(
        self,
        state: SimulationState | PackedState,
        inputs: dict[str, BoolArray] | None,
    ) -> None:
        if not inputs:
            return
        packed = isinstance(state, PackedState)
        rows = np.empty((len(inputs), state.batch), dtype=bool) if packed else None
        idxs: list[int] = []
        for row, (name, vals) in enumerate(inputs.items()):
            idx = self._input_index.get(name)
            if idx is None:
                raise SimulationError(f"{name!r} is not a primary input")
            arr = np.asarray(vals, dtype=bool)
            if arr.ndim == 0:
                arr = np.full(state.batch, bool(arr))
            if arr.shape != (state.batch,):
                raise SimulationError(
                    f"input {name!r} has shape {arr.shape}, "
                    f"expected ({state.batch},)"
                )
            if packed:
                rows[row] = arr
                idxs.append(idx)
            else:
                state.values[idx] = arr
        if packed:
            # One packbits call for the whole stimulus dict keeps the
            # per-cycle workload → packed-state hand-off cheap.
            state.words[np.asarray(idxs, dtype=np.int64)] = pack_bits(rows)

    def _propagate(self, state: SimulationState | PackedState) -> None:
        if isinstance(state, PackedState):
            self._propagate_packed(state)
            return
        values = state.values
        batch = values.shape[1]
        scratch = self._scratch.get(batch)
        if scratch is None:
            scratch = [
                tuple(
                    np.empty((grp.out_idx.size, batch), dtype=bool)
                    for _ in grp.in_idx
                )
                for grp in self._schedule
            ]
            if len(self._scratch) >= 4:  # bound the cache across batch sizes
                self._scratch.pop(next(iter(self._scratch)))
            self._scratch[batch] = scratch
        for grp, bufs in zip(self._schedule, scratch):
            args = [
                np.take(values, idx, axis=0, out=buf)
                for idx, buf in zip(grp.in_idx, bufs)
            ]
            values[grp.out_idx] = grp.function(*args)

    def _propagate_packed(self, state: PackedState) -> None:
        words = state.words
        nwords = words.shape[1]
        scratch = self._scratch_packed.get(nwords)
        if scratch is None:
            scratch = [
                tuple(
                    np.empty((grp.out_idx.size, nwords), dtype=np.uint64)
                    for _ in grp.in_idx
                )
                for grp in self._schedule
            ]
            if len(self._scratch_packed) >= 4:
                self._scratch_packed.pop(next(iter(self._scratch_packed)))
            self._scratch_packed[nwords] = scratch
        for grp, fn, bufs in zip(
            self._schedule, self._packed_functions, scratch
        ):
            args = [
                np.take(words, idx, axis=0, out=buf)
                for idx, buf in zip(grp.in_idx, bufs)
            ]
            words[grp.out_idx] = fn(*args)
