"""Vectorised cycle-based logic simulator.

:class:`CompiledNetlist` lowers a :class:`~repro.logic.netlist.Netlist`
into flat numpy index arrays once, then executes clock cycles over a
whole *batch* of stimulus vectors simultaneously (one column per
plaintext).  Semantics are the standard synchronous zero-delay model:

* at every :meth:`step` the flip-flops capture the D values that were
  settled at the end of the previous cycle (honouring ``EN`` pins),
* new primary-input values are applied,
* combinational logic is evaluated level by level.

Each step reports, per instance and per batch column, whether the
instance's output net toggled.  That toggle matrix — together with each
instance's topological level, which approximates *when* within the
cycle the gate switches — is the sole interface between logic and the
power/EM models, mirroring how the paper couples Hspice currents to the
EM solver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.logic.cells import CellKind
from repro.logic.netlist import Netlist

BoolArray = np.ndarray


@dataclass
class SimulationState:
    """Mutable per-run simulator state.

    ``values`` has shape ``(num_nets, batch)`` and dtype bool; ``cycle``
    counts completed :meth:`CompiledNetlist.step` calls since reset.
    """

    values: np.ndarray
    cycle: int = 0

    @property
    def batch(self) -> int:
        """Number of stimulus vectors simulated in parallel."""
        return self.values.shape[1]


@dataclass(frozen=True)
class _CombGroup:
    """All same-cell gates on one topological level, ready for gather."""

    cell_name: str
    function: object
    in_idx: tuple[np.ndarray, ...]
    out_idx: np.ndarray
    inst_idx: np.ndarray


class CompiledNetlist:
    """A netlist lowered to numpy arrays for batched simulation."""

    def __init__(self, netlist: Netlist) -> None:
        netlist.validate()
        self.netlist = netlist
        self.net_index: dict[str, int] = {
            name: i for i, name in enumerate(netlist.nets)
        }
        self.num_nets = len(self.net_index)

        instances = list(netlist.instances.values())
        self.instance_names: list[str] = [inst.name for inst in instances]
        self.instance_index: dict[str, int] = {
            name: i for i, name in enumerate(self.instance_names)
        }
        self.num_instances = len(instances)
        self.instance_out_idx = np.array(
            [self.net_index[inst.output_net] for inst in instances],
            dtype=np.int64,
        )

        levels = netlist.levelize()
        self.instance_levels = np.array(
            [levels.get(inst.name, 0) for inst in instances], dtype=np.int64
        )
        self.max_level = int(self.instance_levels.max(initial=0))

        # --- sequential elements -------------------------------------
        seq = [inst for inst in instances if inst.cell.is_sequential]
        self.seq_instance_idx = np.array(
            [self.instance_index[inst.name] for inst in seq], dtype=np.int64
        )
        self._seq_d_idx = np.array(
            [self.net_index[inst.pins["D"]] for inst in seq], dtype=np.int64
        )
        self._seq_q_idx = np.array(
            [self.net_index[inst.pins["Q"]] for inst in seq], dtype=np.int64
        )
        self._seq_en_idx = np.array(
            [
                self.net_index[inst.pins["EN"]] if "EN" in inst.pins else -1
                for inst in seq
            ],
            dtype=np.int64,
        )
        self._seq_has_en = self._seq_en_idx >= 0
        self._seq_init = np.array(
            [bool(netlist.ff_init.get(inst.name, False)) for inst in seq],
            dtype=bool,
        )

        # --- tie cells ------------------------------------------------
        tie_idx: list[int] = []
        tie_val: list[bool] = []
        for inst in instances:
            if inst.cell.is_tie:
                tie_idx.append(self.net_index[inst.output_net])
                tie_val.append(inst.cell.name == "TIE1")
        self._tie_idx = np.array(tie_idx, dtype=np.int64)
        self._tie_val = np.array(tie_val, dtype=bool)

        # --- combinational schedule ------------------------------------
        buckets: dict[tuple[int, str], list[int]] = {}
        for i, inst in enumerate(instances):
            if inst.cell.kind is not CellKind.COMBINATIONAL:
                continue
            key = (levels[inst.name], inst.cell.name)
            buckets.setdefault(key, []).append(i)
        self._schedule: list[_CombGroup] = []
        for (level, cell_name) in sorted(buckets):
            idxs = buckets[(level, cell_name)]
            members = [instances[i] for i in idxs]
            cell = members[0].cell
            in_idx = tuple(
                np.array(
                    [self.net_index[m.pins[pin]] for m in members],
                    dtype=np.int64,
                )
                for pin in cell.inputs
            )
            out_idx = np.array(
                [self.net_index[m.output_net] for m in members], dtype=np.int64
            )
            self._schedule.append(
                _CombGroup(
                    cell_name=cell_name,
                    function=cell.function,
                    in_idx=in_idx,
                    out_idx=out_idx,
                    inst_idx=np.array(idxs, dtype=np.int64),
                )
            )

        self._input_index = {
            name: self.net_index[name] for name in netlist.inputs
        }
        # Per-batch-size scratch buffers for _propagate's input gathers
        # (one set per comb group), so the hot loop stops allocating.
        self._scratch: dict[int, list[tuple[np.ndarray, ...]]] = {}

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def reset(
        self,
        batch: int = 1,
        inputs: dict[str, BoolArray] | None = None,
    ) -> SimulationState:
        """Return a freshly reset state with combinational logic settled.

        Flip-flops take their ``ff_init`` values; unspecified primary
        inputs are 0.
        """
        if batch <= 0:
            raise SimulationError(f"batch size must be positive, got {batch}")
        values = np.zeros((self.num_nets, batch), dtype=bool)
        state = SimulationState(values=values, cycle=0)
        if self._seq_q_idx.size:
            values[self._seq_q_idx] = self._seq_init[:, None]
        if self._tie_idx.size:
            values[self._tie_idx] = self._tie_val[:, None]
        self._apply_inputs(state, inputs)
        self._propagate(state)
        return state

    def step(
        self,
        state: SimulationState,
        inputs: dict[str, BoolArray] | None = None,
    ) -> BoolArray:
        """Advance one clock cycle; return the per-instance toggle matrix.

        The returned array has shape ``(num_instances, batch)`` and is
        True where the instance's output net changed during this cycle.
        """
        values = state.values
        prev = values[self.instance_out_idx].copy()

        # Clock edge: capture D into Q (with enables) from settled values.
        if self._seq_q_idx.size:
            d_vals = values[self._seq_d_idx]
            q_vals = values[self._seq_q_idx]
            if self._seq_has_en.any():
                en_idx = np.where(self._seq_has_en, self._seq_en_idx, 0)
                en_vals = values[en_idx]
                en_vals[~self._seq_has_en] = True
            else:
                en_vals = np.ones_like(d_vals)
            values[self._seq_q_idx] = np.where(en_vals, d_vals, q_vals)

        self._apply_inputs(state, inputs)
        self._propagate(state)
        state.cycle += 1
        return values[self.instance_out_idx] != prev

    def run(
        self,
        state: SimulationState,
        cycles: int,
        inputs: dict[str, BoolArray] | None = None,
    ) -> BoolArray:
        """Run *cycles* steps with constant inputs; return summed toggles.

        The result has shape ``(num_instances, batch)`` with integer
        toggle counts — handy for activity statistics.
        """
        total = np.zeros((self.num_instances, state.batch), dtype=np.int64)
        for _ in range(cycles):
            total += self.step(state, inputs)
            inputs = None  # only applied on the first cycle
        return total

    def output_values(self, state: SimulationState) -> BoolArray:
        """Current output-net value of every instance, ``(n_inst, batch)``.

        Combined with a toggle matrix this distinguishes rising from
        falling output transitions (a cell that just toggled and now
        reads 1 rose) — the power model draws more VDD current on rises.
        """
        return state.values[self.instance_out_idx]

    def clock_enable_values(self, state: SimulationState) -> BoolArray:
        """Per-sequential-instance clock-enable status, ``(n_seq, batch)``.

        Rows align with :attr:`seq_instance_idx`.  Plain DFFs are always
        clocked; DFFEs only when their EN pin is high — the model's
        stand-in for integrated clock gating, which is what keeps a
        dormant (clock-gated) Trojan free of clock-tree current.
        """
        if self._seq_d_idx.size == 0:
            return np.zeros((0, state.batch), dtype=bool)
        if self._seq_has_en.any():
            en_idx = np.where(self._seq_has_en, self._seq_en_idx, 0)
            en_vals = state.values[en_idx].copy()
            en_vals[~self._seq_has_en] = True
        else:
            en_vals = np.ones((self._seq_d_idx.size, state.batch), dtype=bool)
        return en_vals

    def force_net(
        self,
        state: SimulationState,
        net: str,
        value: BoolArray | bool,
        propagate: bool = True,
    ) -> None:
        """Override a net's value (fault injection, e.g. an A2 payload).

        With *propagate* the combinational logic re-settles so the
        forced value is visible downstream before the next clock edge.
        """
        idx = self.net_index.get(net)
        if idx is None:
            raise SimulationError(f"unknown net {net!r}")
        arr = np.asarray(value, dtype=bool)
        if arr.ndim == 0:
            arr = np.full(state.batch, bool(arr))
        state.values[idx] = arr
        if propagate:
            self._propagate(state)

    # ------------------------------------------------------------------
    # Value access
    # ------------------------------------------------------------------
    def read(self, state: SimulationState, net: str) -> BoolArray:
        """Current value of one net across the batch."""
        return state.values[self.net_index[net]].copy()

    def read_bus(self, state: SimulationState, bus: list[str]) -> np.ndarray:
        """Bus values as an integer array of shape ``(batch,)``.

        Only valid for buses up to 63 bits; wider buses should be read
        with :meth:`read_bus_bits`.
        """
        if len(bus) > 63:
            raise SimulationError(
                f"read_bus supports up to 63 bits, got {len(bus)}; "
                "use read_bus_bits"
            )
        bits = state.values[[self.net_index[n] for n in bus]]
        out = np.zeros(state.batch, dtype=np.int64)
        for row in bits:
            out = (out << 1) | row.astype(np.int64)
        return out

    def read_bus_bits(self, state: SimulationState, bus: list[str]) -> np.ndarray:
        """Bus values as a bool array of shape ``(width, batch)``, MSB first."""
        return state.values[[self.net_index[n] for n in bus]].copy()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _apply_inputs(
        self,
        state: SimulationState,
        inputs: dict[str, BoolArray] | None,
    ) -> None:
        if not inputs:
            return
        for name, vals in inputs.items():
            idx = self._input_index.get(name)
            if idx is None:
                raise SimulationError(f"{name!r} is not a primary input")
            arr = np.asarray(vals, dtype=bool)
            if arr.ndim == 0:
                arr = np.full(state.batch, bool(arr))
            if arr.shape != (state.batch,):
                raise SimulationError(
                    f"input {name!r} has shape {arr.shape}, "
                    f"expected ({state.batch},)"
                )
            state.values[idx] = arr

    def _propagate(self, state: SimulationState) -> None:
        values = state.values
        batch = values.shape[1]
        scratch = self._scratch.get(batch)
        if scratch is None:
            scratch = [
                tuple(
                    np.empty((grp.out_idx.size, batch), dtype=bool)
                    for _ in grp.in_idx
                )
                for grp in self._schedule
            ]
            if len(self._scratch) >= 4:  # bound the cache across batch sizes
                self._scratch.pop(next(iter(self._scratch)))
            self._scratch[batch] = scratch
        for grp, bufs in zip(self._schedule, scratch):
            args = [
                np.take(values, idx, axis=0, out=buf)
                for idx, buf in zip(grp.in_idx, bufs)
            ]
            values[grp.out_idx] = grp.function(*args)
