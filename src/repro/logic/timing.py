"""Static timing analysis (topological, unit-delay-per-cell model).

A PrimeTime-lite for the generated netlists: per-cell delays are
derived from drive strength and output load, arrival times propagate
through the levelised combinational graph, and the report gives the
critical path, the maximum clock frequency and the slack at a target
period.  The AES generator's tests use this to prove the design closes
timing at the chip's 24 MHz.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.logic.cells import CellKind
from repro.logic.netlist import INPUT_DRIVER, Netlist

#: Intrinsic cell delay floor [s].
INTRINSIC_DELAY = 60e-12

#: Delay per farad of output load per ampere of drive [s·A/F]... the
#: simple RC surrogate below uses  delay = intrinsic + Vdd * C / I.
VDD = 1.8


def cell_delay(netlist: Netlist, instance_name: str) -> float:
    """Load-dependent propagation delay of one instance [s]."""
    inst = netlist.instances[instance_name]
    out_net = netlist.nets[inst.output_net]
    load = inst.cell.output_cap
    for load_name, _pin in out_net.loads:
        load += netlist.instances[load_name].cell.input_cap
    if inst.cell.drive_current <= 0:
        return INTRINSIC_DELAY
    return INTRINSIC_DELAY + VDD * load / inst.cell.drive_current


@dataclass
class TimingPath:
    """One register-to-register (or port-to-register) path."""

    instances: list[str]
    delay: float

    def format(self) -> str:
        chain = " -> ".join(self.instances[-12:])
        prefix = "... -> " if len(self.instances) > 12 else ""
        return f"{self.delay * 1e9:.3f} ns: {prefix}{chain}"


@dataclass
class TimingReport:
    """Outcome of a full-netlist STA run."""

    critical_path: TimingPath
    max_frequency: float
    clock_period: float
    slack: float
    arrival_times: dict[str, float] = field(repr=False, default_factory=dict)

    @property
    def met(self) -> bool:
        """True when the design closes timing at the target period."""
        return self.slack >= 0.0

    def format(self) -> str:
        status = "MET" if self.met else "VIOLATED"
        return (
            f"critical path {self.critical_path.delay * 1e9:.3f} ns "
            f"(fmax {self.max_frequency / 1e6:.1f} MHz); "
            f"target {self.clock_period * 1e9:.2f} ns -> slack "
            f"{self.slack * 1e9:+.3f} ns [{status}]\n"
            f"  {self.critical_path.format()}"
        )


def analyze_timing(netlist: Netlist, clock_period: float) -> TimingReport:
    """Run STA over the whole netlist against *clock_period* [s].

    Timing endpoints are flip-flop D pins and primary outputs; start
    points are flip-flop Q pins and primary inputs (arrival 0).  Setup
    and clock-to-Q are folded into the cells' intrinsic delays.
    """
    if clock_period <= 0:
        raise SimulationError(f"clock period must be positive, got {clock_period}")
    levels = netlist.levelize()
    order = sorted(levels, key=lambda n: levels[n])

    # Arrival time and predecessor per *net*.
    arrival: dict[str, float] = {}
    pred: dict[str, str | None] = {}
    for name, net in netlist.nets.items():
        if net.driver == INPUT_DRIVER:
            arrival[name] = 0.0
            pred[name] = None
        elif net.driver is not None:
            drv = netlist.instances[net.driver]
            if drv.cell.kind in (CellKind.SEQUENTIAL, CellKind.TIE):
                arrival[name] = 0.0
                pred[name] = None

    inst_arrival: dict[str, float] = {}
    for inst_name in order:
        inst = netlist.instances[inst_name]
        worst_in, worst_net = 0.0, None
        for net in inst.input_nets():
            t = arrival.get(net, 0.0)
            if t >= worst_in:
                worst_in, worst_net = t, net
        delay = cell_delay(netlist, inst_name)
        t_out = worst_in + delay
        inst_arrival[inst_name] = t_out
        out = inst.output_net
        arrival[out] = t_out
        pred[out] = worst_net

    # Worst endpoint: max arrival at any flop D pin or primary output.
    worst_time, worst_endpoint = 0.0, None
    for inst in netlist.sequential_instances():
        t = arrival.get(inst.pins["D"], 0.0)
        if t >= worst_time:
            worst_time, worst_endpoint = t, inst.pins["D"]
    for out in netlist.outputs:
        t = arrival.get(out, 0.0)
        if t >= worst_time:
            worst_time, worst_endpoint = t, out

    # Trace the critical path back through predecessors.
    path: list[str] = []
    net = worst_endpoint
    while net is not None:
        drv = netlist.nets[net].driver
        if drv is None or drv == INPUT_DRIVER:
            break
        inst = netlist.instances[drv]
        path.append(drv)
        if inst.cell.kind in (CellKind.SEQUENTIAL, CellKind.TIE):
            break
        net = pred.get(net)
    path.reverse()

    worst_time = max(worst_time, INTRINSIC_DELAY)
    return TimingReport(
        critical_path=TimingPath(instances=path, delay=worst_time),
        max_frequency=1.0 / worst_time,
        clock_period=clock_period,
        slack=clock_period - worst_time,
        arrival_times=inst_arrival,
    )
