"""Netlist statistics — the machinery behind the paper's Table I.

Table I reports each Trojan's gate count and its size relative to the
33 k-gate AES.  :func:`netlist_stats` computes gate counts, cell-type
histograms, areas and leakage per instance group so the benchmark can
print the same table from *our* generated netlists.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.logic.netlist import Netlist


@dataclass
class GroupStats:
    """Aggregate figures for one instance group."""

    group: str
    gate_count: int = 0
    flop_count: int = 0
    area: float = 0.0
    leakage: float = 0.0
    cell_histogram: dict[str, int] = field(default_factory=dict)


@dataclass
class NetlistStats:
    """Per-group and total statistics of a netlist."""

    name: str
    groups: dict[str, GroupStats]

    @property
    def total_gates(self) -> int:
        return sum(g.gate_count for g in self.groups.values())

    @property
    def total_area(self) -> float:
        return sum(g.area for g in self.groups.values())

    def gate_percentage(self, group: str, reference: str) -> float:
        """Gate count of *group* as a percentage of *reference*'s count.

        This is exactly how Table I expresses Trojan sizes (Trojan gates
        over AES gates, not over the whole chip).
        """
        ref = self.groups[reference].gate_count
        if ref == 0:
            raise ZeroDivisionError(f"reference group {reference!r} has no gates")
        return 100.0 * self.groups[group].gate_count / ref

    def area_percentage(self, group: str, reference: str) -> float:
        """Area of *group* relative to *reference*, in percent.

        Table I sizes the A2 Trojan by *area* because a 6-transistor
        analog cell has no meaningful gate count.
        """
        ref = self.groups[reference].area
        if ref == 0.0:
            raise ZeroDivisionError(f"reference group {reference!r} has no area")
        return 100.0 * self.groups[group].area / ref


def netlist_stats(netlist: Netlist) -> NetlistStats:
    """Compute per-group statistics of *netlist*."""
    groups: dict[str, GroupStats] = {}
    for inst in netlist.instances.values():
        stats = groups.get(inst.group)
        if stats is None:
            stats = GroupStats(group=inst.group)
            groups[inst.group] = stats
        stats.gate_count += 1
        if inst.cell.is_sequential:
            stats.flop_count += 1
        stats.area += inst.cell.area
        stats.leakage += inst.cell.leakage
        hist = stats.cell_histogram
        hist[inst.cell.name] = hist.get(inst.cell.name, 0) + 1
    return NetlistStats(name=netlist.name, groups=groups)


def format_table(
    stats: NetlistStats,
    reference: str,
    order: list[str] | None = None,
) -> str:
    """Render a Table I-style text table.

    Rows are instance groups; columns are gate count and percentage of
    the *reference* group's gate count.
    """
    names = order if order is not None else sorted(stats.groups)
    lines = [f"{'Circuit':<12}{'Gate Count':>12}{'Percentage':>14}"]
    for name in names:
        grp = stats.groups[name]
        pct = stats.gate_percentage(name, reference)
        lines.append(f"{name:<12}{grp.gate_count:>12}{pct:>13.2f}%")
    return "\n".join(lines)
