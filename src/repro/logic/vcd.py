"""VCD (Value Change Dump) waveform export.

Records selected nets during a simulation run and writes an IEEE-1364
VCD file, so the generated designs can be inspected in GTKWave or any
EDA waveform viewer — indispensable when debugging a Trojan trigger.

Usage::

    sim = CompiledNetlist(netlist)
    state = sim.reset()
    with VcdWriter("run.vcd", sim, nets=["busy_q", *aes.round_ctr]) as vcd:
        for _ in range(100):
            sim.step(state)
            vcd.sample(state)
"""

from __future__ import annotations

from typing import IO, Sequence

from repro.errors import SimulationError
from repro.logic.simulator import CompiledNetlist, SimulationState
from repro.logic.verilog import sanitize_identifier

_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _vcd_id(index: int) -> str:
    """Short printable VCD identifier for signal *index*."""
    if index < 0:
        raise SimulationError(f"negative VCD signal index {index}")
    out = ""
    index += 1
    while index:
        index, rem = divmod(index - 1, len(_ID_CHARS))
        out = _ID_CHARS[rem] + out
    return out


class VcdWriter:
    """Stream selected net values into a VCD file, one sample per cycle."""

    def __init__(
        self,
        path: str,
        sim: CompiledNetlist,
        nets: Sequence[str],
        timescale: str = "1ns",
        cycle_time: int = 42,
    ) -> None:
        """
        Parameters
        ----------
        path:
            Output file path.
        sim:
            The compiled netlist being simulated.
        nets:
            Net names to record (batch column 0 is dumped).
        timescale:
            VCD timescale directive.
        cycle_time:
            Timestamp increment per sample, in timescale units
            (42 ns ~= one 24 MHz clock period).
        """
        if not nets:
            raise SimulationError("VCD writer needs at least one net")
        missing = [n for n in nets if n not in sim.net_index]
        if missing:
            raise SimulationError(f"unknown nets for VCD: {missing[:5]}")
        self._sim = sim
        self._nets = list(nets)
        self._ids = {net: _vcd_id(i) for i, net in enumerate(self._nets)}
        self._cycle_time = cycle_time
        self._time = 0
        self._last: dict[str, int | None] = {net: None for net in self._nets}
        self._fh: IO[str] = open(path, "w", encoding="utf-8")
        self._write_header(timescale)

    def _write_header(self, timescale: str) -> None:
        fh = self._fh
        fh.write("$date repro logic simulator $end\n")
        fh.write(f"$timescale {timescale} $end\n")
        fh.write(f"$scope module {sanitize_identifier(self._sim.netlist.name)} $end\n")
        for net in self._nets:
            fh.write(
                f"$var wire 1 {self._ids[net]} "
                f"{sanitize_identifier(net)} $end\n"
            )
        fh.write("$upscope $end\n$enddefinitions $end\n")

    def sample(self, state: SimulationState, column: int = 0) -> None:
        """Record the current value of every tracked net."""
        fh = self._fh
        changes = []
        for net in self._nets:
            value = int(state.values[self._sim.net_index[net], column])
            if value != self._last[net]:
                changes.append(f"{value}{self._ids[net]}")
                self._last[net] = value
        if changes or self._time == 0:
            fh.write(f"#{self._time}\n")
            for change in changes:
                fh.write(change + "\n")
        self._time += self._cycle_time

    def close(self) -> None:
        """Finalise and close the file."""
        if not self._fh.closed:
            self._fh.write(f"#{self._time}\n")
            self._fh.close()

    def __enter__(self) -> "VcdWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
