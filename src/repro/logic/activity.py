"""Switching-activity recorders.

The simulator emits one toggle matrix per cycle; these helpers fold that
stream into the aggregates the rest of the pipeline needs:

* :class:`ToggleCountRecorder` — plain per-instance toggle totals, used
  for power reports and activity statistics;
* :class:`ActivityAccumulator` — per-cycle, per-delay-bin *weighted*
  toggle sums.  With weights set to each cell's EM coupling coefficient
  (see :mod:`repro.em.coupling`) its output is, up to the pulse shape,
  the sensor waveform itself — this reduction is what lets a 33 k-gate
  design produce tens of thousands of traces in seconds;
* :class:`TraceRecorder` — full raw toggle history, for unit tests and
  small circuits.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.logic.netlist import Netlist
from repro.logic.simulator import CompiledNetlist

#: Ceiling on the dense per-bin fold matrix (see ActivityAccumulator);
#: beyond this the accumulator falls back to the scatter-add fold.
_DENSE_FOLD_LIMIT_BYTES = 128 * 1024 * 1024


class ToggleCountRecorder:
    """Accumulates total output toggles per instance."""

    def __init__(self, sim: CompiledNetlist) -> None:
        self._sim = sim
        self.counts = np.zeros(sim.num_instances, dtype=np.int64)
        self.cycles = 0

    def record(self, toggles: np.ndarray) -> None:
        """Fold in one cycle's toggle matrix (summing over the batch)."""
        if toggles.shape[0] != self._sim.num_instances:
            raise SimulationError(
                f"toggle matrix has {toggles.shape[0]} rows, expected "
                f"{self._sim.num_instances}"
            )
        self.counts += toggles.sum(axis=1)
        self.cycles += 1

    def counts_by_group(self) -> dict[str, int]:
        """Total toggles aggregated per instance group."""
        netlist = self._sim.netlist
        out: dict[str, int] = {}
        for name, count in zip(self._sim.instance_names, self.counts):
            group = netlist.instances[name].group
            out[group] = out.get(group, 0) + int(count)
        return out

    def activity_factor(self) -> np.ndarray:
        """Average toggles per instance per cycle (per batch column)."""
        if self.cycles == 0:
            raise SimulationError("no cycles recorded yet")
        return self.counts / float(self.cycles)


class ActivityAccumulator:
    """Per-cycle weighted toggle sums, grouped by switching-delay bin.

    Parameters
    ----------
    weights:
        Per-instance scalar weight, shape ``(num_instances,)``.  The EM
        pipeline passes each cell's flux-coupling coefficient times its
        switched charge.
    bins:
        Per-instance integer delay bin, shape ``(num_instances,)``.  The
        power model derives these from topological levels so that deep
        gates switch later within the clock period.
    dtype:
        Floating dtype of the fold (dense matrix and recorded frames).
        Default float64; the acquisition engine folds in float32, which
        halves GEMM traffic and is the precision the synthesised traces
        resolve anyway.
    """

    def __init__(
        self,
        weights: np.ndarray,
        bins: np.ndarray,
        dtype: np.dtype | type = np.float64,
    ) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        bins = np.asarray(bins, dtype=np.int64)
        if weights.shape != bins.shape or weights.ndim != 1:
            raise SimulationError(
                f"weights {weights.shape} and bins {bins.shape} must be "
                "equal-length 1-D arrays"
            )
        if bins.size and bins.min() < 0:
            raise SimulationError("delay bins must be non-negative")
        self.weights = weights
        self.bins = bins
        self.dtype = np.dtype(dtype)
        self.num_bins = int(bins.max(initial=-1)) + 1
        # Recorded history, stored as (cycles_in_block, bins, batch)
        # chunks: record() appends 1-cycle blocks, the blocked engine
        # fold appends many cycles at once.
        self._blocks: list[np.ndarray] = []
        # The fold "sum weighted toggles per bin" is a matrix product
        # with the (num_bins, insts) indicator-times-weight matrix; BLAS
        # runs it several times faster than ``np.add.at``'s unbuffered
        # scatter.  Only built when affordably dense.
        self._dense: np.ndarray | None = None
        if 0 < self.num_bins * weights.size * 8 <= _DENSE_FOLD_LIMIT_BYTES:
            dense = np.zeros((self.num_bins, weights.size), dtype=self.dtype)
            dense[bins, np.arange(weights.size)] = weights
            self._dense = dense
        self._stack_key: tuple[int, ...] | None = None
        self._stack_dense: np.ndarray | None = None

    def _fold(self, toggles: np.ndarray) -> np.ndarray:
        """Fold one toggle matrix into a ``(bins, batch)`` frame."""
        if self._dense is not None:
            return self._dense @ toggles
        frame = np.zeros((self.num_bins, toggles.shape[1]), dtype=self.dtype)
        if self.weights.size:
            np.add.at(frame, self.bins, toggles * self.weights[:, None])
        return frame

    def record(self, toggles: np.ndarray) -> None:
        """Fold in one cycle's toggle matrix of shape ``(insts, batch)``."""
        if toggles.shape[0] != self.weights.shape[0]:
            raise SimulationError(
                f"toggle matrix has {toggles.shape[0]} rows, expected "
                f"{self.weights.shape[0]}"
            )
        self._blocks.append(self._fold(toggles)[None])

    @staticmethod
    def _stacked_dense(
        accumulators: list["ActivityAccumulator"],
    ) -> np.ndarray:
        """Row-stacked dense fold matrices of *accumulators* (cached)."""
        first = accumulators[0]
        key = tuple(id(acc) for acc in accumulators)
        if first._stack_key != key:
            first._stack_key = key
            first._stack_dense = np.vstack(
                [acc._dense for acc in accumulators]
            )
        return first._stack_dense

    @staticmethod
    def record_all(
        accumulators: list["ActivityAccumulator"], toggles: np.ndarray
    ) -> None:
        """Fold one toggle matrix into several accumulators at once.

        When every accumulator has a dense fold matrix (the acquisition
        engine's receivers all do), they are stacked into a single
        matrix product so the toggle matrix is read once per cycle
        instead of once per receiver.
        """
        if not accumulators:
            return
        first = accumulators[0]
        if toggles.shape[0] != first.weights.shape[0]:
            raise SimulationError(
                f"toggle matrix has {toggles.shape[0]} rows, expected "
                f"{first.weights.shape[0]}"
            )
        if len(accumulators) == 1 or any(
            acc._dense is None for acc in accumulators
        ):
            for acc in accumulators:
                acc.record(toggles)
            return
        frames = ActivityAccumulator._stacked_dense(accumulators) @ toggles
        row = 0
        for acc in accumulators:
            acc._blocks.append(frames[None, row : row + acc.num_bins])
            row += acc.num_bins

    @staticmethod
    def record_all_blocks(
        accumulators: list["ActivityAccumulator"],
        columns: np.ndarray,
        n_cycles: int,
        batch: int,
    ) -> None:
        """Fold a whole block of cycles into several accumulators at once.

        *columns* holds ``n_cycles`` weighted toggle matrices side by
        side, shape ``(insts, n_cycles * batch)`` with cycle-major
        columns — the layout the acquisition engine's block buffers
        produce.  The fold is one
        ``(sum_bins, insts) @ (insts, n_cycles * batch)`` BLAS call
        across all accumulators instead of ``n_cycles`` small GEMMs.
        """
        if not accumulators:
            return
        first = accumulators[0]
        if columns.shape != (first.weights.shape[0], n_cycles * batch):
            raise SimulationError(
                f"column block has shape {columns.shape}, expected "
                f"({first.weights.shape[0]}, {n_cycles * batch})"
            )
        if any(acc._dense is None for acc in accumulators):
            for c in range(n_cycles):
                ActivityAccumulator.record_all(
                    accumulators, columns[:, c * batch : (c + 1) * batch]
                )
            return
        frames = ActivityAccumulator._stacked_dense(accumulators) @ columns
        row = 0
        for acc in accumulators:
            block = frames[row : row + acc.num_bins]
            acc._blocks.append(
                block.reshape(acc.num_bins, n_cycles, batch).transpose(1, 0, 2)
            )
            row += acc.num_bins

    @property
    def cycles(self) -> int:
        """Number of cycles recorded so far."""
        return sum(block.shape[0] for block in self._blocks)

    def result(self) -> np.ndarray:
        """Stacked history of shape ``(cycles, num_bins, batch)``."""
        if not self._blocks:
            raise SimulationError("no cycles recorded yet")
        return np.concatenate(self._blocks, axis=0)

    def clear(self) -> None:
        """Drop all recorded frames (weights/bins are kept)."""
        self._blocks.clear()


class TraceRecorder:
    """Keeps the raw toggle matrix of every cycle (small circuits only)."""

    def __init__(self, sim: CompiledNetlist, limit_cycles: int = 100_000) -> None:
        self._sim = sim
        self._limit = limit_cycles
        self._frames: list[np.ndarray] = []

    def record(self, toggles: np.ndarray) -> None:
        """Store one cycle's toggle matrix."""
        if len(self._frames) >= self._limit:
            raise SimulationError(
                f"TraceRecorder limit of {self._limit} cycles exceeded"
            )
        self._frames.append(toggles.copy())

    def history(self) -> np.ndarray:
        """Array of shape ``(cycles, num_instances, batch)``."""
        if not self._frames:
            raise SimulationError("no cycles recorded yet")
        return np.stack(self._frames, axis=0)

    def toggles_of(self, instance_name: str) -> np.ndarray:
        """Toggle history of one instance, shape ``(cycles, batch)``."""
        idx = self._sim.instance_index[instance_name]
        return self.history()[:, idx, :]
