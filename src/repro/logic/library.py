"""A compact 180 nm-flavoured standard-cell library.

The numbers are representative of a generic 0.18 µm CMOS process
(VDD = 1.8 V, ~3.5 fF input pin capacitance, gate areas of a few tens of
µm², picoamp-class leakage).  Absolute accuracy is not required — the
paper's results depend on *relative* switching currents and cell
locations — but staying near real 180 nm values keeps the simulated
SNR figures in a physically plausible range.

Cell heights follow a classic 9-track row (height 5.04 µm); cell area is
``width * ROW_HEIGHT`` and the widths below are multiples of the
0.56 µm placement grid.
"""

from __future__ import annotations

from repro.errors import LibraryError
from repro.logic import cells as _f
from repro.logic.cells import CellKind, StdCell
from repro.units import FF, NA, UA, UM

#: Supply voltage of the modelled process [V].
VDD = 1.8

#: Standard-cell row height [m] (9-track, 0.56 µm track pitch).
ROW_HEIGHT = 5.04 * UM

#: Horizontal placement grid [m].
SITE_WIDTH = 0.56 * UM

#: Nominal single-gate propagation delay used to bin switching times [s].
GATE_DELAY = 120e-12


def _cell(
    name: str,
    kind: CellKind,
    inputs: tuple[str, ...],
    output: str,
    function,
    sites: int,
    input_cap: float,
    output_cap: float,
    drive_current: float,
    leakage: float,
    description: str,
) -> StdCell:
    return StdCell(
        name=name,
        kind=kind,
        inputs=inputs,
        output=output,
        function=function,
        area=sites * SITE_WIDTH * ROW_HEIGHT,
        input_cap=input_cap,
        output_cap=output_cap,
        drive_current=drive_current,
        leakage=leakage,
        description=description,
    )


_COMB = CellKind.COMBINATIONAL
_SEQ = CellKind.SEQUENTIAL
_TIE = CellKind.TIE

#: The library proper, keyed by cell name.
LIBRARY: dict[str, StdCell] = {
    cell.name: cell
    for cell in (
        _cell("BUF", _COMB, ("A",), "Y", _f.f_buf, 3, 3.2 * FF, 2.4 * FF,
              180 * UA, 12 * NA, "non-inverting buffer"),
        _cell("INV", _COMB, ("A",), "Y", _f.f_inv, 2, 3.5 * FF, 2.0 * FF,
              200 * UA, 10 * NA, "inverter"),
        _cell("NAND2", _COMB, ("A", "B"), "Y", _f.f_nand2, 3, 3.4 * FF,
              2.6 * FF, 190 * UA, 14 * NA, "2-input NAND"),
        _cell("NOR2", _COMB, ("A", "B"), "Y", _f.f_nor2, 3, 3.6 * FF,
              2.8 * FF, 170 * UA, 14 * NA, "2-input NOR"),
        _cell("AND2", _COMB, ("A", "B"), "Y", _f.f_and2, 4, 3.4 * FF,
              2.8 * FF, 185 * UA, 16 * NA, "2-input AND"),
        _cell("OR2", _COMB, ("A", "B"), "Y", _f.f_or2, 4, 3.6 * FF,
              2.9 * FF, 175 * UA, 16 * NA, "2-input OR"),
        _cell("XOR2", _COMB, ("A", "B"), "Y", _f.f_xor2, 6, 4.2 * FF,
              3.4 * FF, 210 * UA, 22 * NA, "2-input XOR"),
        _cell("XNOR2", _COMB, ("A", "B"), "Y", _f.f_xnor2, 6, 4.2 * FF,
              3.4 * FF, 210 * UA, 22 * NA, "2-input XNOR"),
        _cell("AND3", _COMB, ("A", "B", "C"), "Y", _f.f_and3, 5, 3.5 * FF,
              3.1 * FF, 180 * UA, 20 * NA, "3-input AND"),
        _cell("OR3", _COMB, ("A", "B", "C"), "Y", _f.f_or3, 5, 3.7 * FF,
              3.2 * FF, 170 * UA, 20 * NA, "3-input OR"),
        _cell("NAND3", _COMB, ("A", "B", "C"), "Y", _f.f_nand3, 4, 3.5 * FF,
              3.0 * FF, 185 * UA, 18 * NA, "3-input NAND"),
        _cell("NOR3", _COMB, ("A", "B", "C"), "Y", _f.f_nor3, 4, 3.8 * FF,
              3.1 * FF, 160 * UA, 18 * NA, "3-input NOR"),
        _cell("MUX2", _COMB, ("A", "B", "S"), "Y", _f.f_mux2, 7, 3.9 * FF,
              3.3 * FF, 195 * UA, 24 * NA, "2:1 multiplexer (Y=A when S=0)"),
        _cell("AOI21", _COMB, ("A", "B", "C"), "Y", _f.f_aoi21, 4, 3.5 * FF,
              2.9 * FF, 180 * UA, 17 * NA, "AND-OR-INVERT ~((A&B)|C)"),
        _cell("OAI21", _COMB, ("A", "B", "C"), "Y", _f.f_oai21, 4, 3.6 * FF,
              2.9 * FF, 180 * UA, 17 * NA, "OR-AND-INVERT ~((A|B)&C)"),
        _cell("DFF", _SEQ, ("D",), "Q", None, 12, 3.8 * FF, 3.6 * FF,
              260 * UA, 45 * NA, "rising-edge D flip-flop"),
        _cell("DFFE", _SEQ, ("D", "EN"), "Q", None, 15, 3.8 * FF, 3.6 * FF,
              260 * UA, 55 * NA, "D flip-flop with clock enable"),
        _cell("TIE0", _TIE, (), "Y", None, 2, 0.0, 1.2 * FF, 0.0, 4 * NA,
              "constant logic 0"),
        _cell("TIE1", _TIE, (), "Y", None, 2, 0.0, 1.2 * FF, 0.0, 4 * NA,
              "constant logic 1"),
    )
}


def get_cell(name: str) -> StdCell:
    """Look up a cell by name.

    Raises
    ------
    LibraryError
        If the cell does not exist in :data:`LIBRARY`.
    """
    try:
        return LIBRARY[name]
    except KeyError:
        known = ", ".join(sorted(LIBRARY))
        raise LibraryError(f"unknown cell {name!r}; library has: {known}") from None


def list_cells() -> list[str]:
    """Names of all cells in the library, sorted."""
    return sorted(LIBRARY)
