"""Standard-cell primitives.

A :class:`StdCell` couples a Boolean function with the physical data the
power and layout models need: cell area, pin capacitance, drive current
and leakage.  Cells are immutable; the singleton instances live in
:mod:`repro.logic.library`.

Combinational functions operate on *batched* numpy boolean arrays so a
single simulator pass can evaluate many plaintexts at once — the batch
dimension is how the trace campaigns stay fast in pure Python.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

BoolArray = np.ndarray
CellFunction = Callable[..., BoolArray]


class CellKind(enum.Enum):
    """Coarse behavioural class of a standard cell."""

    COMBINATIONAL = "combinational"
    SEQUENTIAL = "sequential"
    TIE = "tie"


@dataclass(frozen=True)
class StdCell:
    """An immutable standard-cell definition.

    Parameters
    ----------
    name:
        Library cell name, e.g. ``"NAND2"``.
    kind:
        Behavioural class; sequential cells are handled specially by the
        simulator (their output updates only on the clock edge).
    inputs:
        Ordered input pin names.  For sequential cells the data pin(s)
        come first; an optional enable pin is named ``"EN"``.
    output:
        Single output pin name (``"Y"`` for gates, ``"Q"`` for flops).
    function:
        Batched Boolean function for combinational cells, ``None`` for
        sequential/tie cells.
    area:
        Cell area in m^2 (library characterised at 180 nm).
    input_cap:
        Capacitance of one input pin in farads.
    output_cap:
        Intrinsic output (drain) capacitance in farads.
    drive_current:
        Peak switching current the output stage sources/sinks, in A.
    leakage:
        Static leakage current in A.
    """

    name: str
    kind: CellKind
    inputs: tuple[str, ...]
    output: str
    function: CellFunction | None
    area: float
    input_cap: float
    output_cap: float
    drive_current: float
    leakage: float
    description: str = field(default="", compare=False)

    @property
    def arity(self) -> int:
        """Number of input pins."""
        return len(self.inputs)

    @property
    def is_sequential(self) -> bool:
        """True for flip-flops and latches."""
        return self.kind is CellKind.SEQUENTIAL

    @property
    def is_tie(self) -> bool:
        """True for constant-generator cells (TIE0/TIE1)."""
        return self.kind is CellKind.TIE

    def evaluate(self, *pin_values: BoolArray) -> BoolArray:
        """Evaluate the combinational function on batched pin values.

        Raises
        ------
        TypeError
            If the cell has no combinational function (sequential/tie).
        ValueError
            If the number of arguments does not match the pin count.
        """
        if self.function is None:
            raise TypeError(f"cell {self.name} has no combinational function")
        if len(pin_values) != self.arity:
            raise ValueError(
                f"cell {self.name} expects {self.arity} inputs, "
                f"got {len(pin_values)}"
            )
        return self.function(*pin_values)


# ---------------------------------------------------------------------------
# Boolean functions (batched numpy arrays)
# ---------------------------------------------------------------------------


def f_buf(a: BoolArray) -> BoolArray:
    return a.copy()


def f_inv(a: BoolArray) -> BoolArray:
    return ~a


def f_and2(a: BoolArray, b: BoolArray) -> BoolArray:
    return a & b


def f_or2(a: BoolArray, b: BoolArray) -> BoolArray:
    return a | b


def f_nand2(a: BoolArray, b: BoolArray) -> BoolArray:
    return ~(a & b)


def f_nor2(a: BoolArray, b: BoolArray) -> BoolArray:
    return ~(a | b)


def f_xor2(a: BoolArray, b: BoolArray) -> BoolArray:
    return a ^ b


def f_xnor2(a: BoolArray, b: BoolArray) -> BoolArray:
    return ~(a ^ b)


def f_and3(a: BoolArray, b: BoolArray, c: BoolArray) -> BoolArray:
    return a & b & c


def f_or3(a: BoolArray, b: BoolArray, c: BoolArray) -> BoolArray:
    return a | b | c


def f_nand3(a: BoolArray, b: BoolArray, c: BoolArray) -> BoolArray:
    return ~(a & b & c)


def f_nor3(a: BoolArray, b: BoolArray, c: BoolArray) -> BoolArray:
    return ~(a | b | c)


def f_mux2(a: BoolArray, b: BoolArray, s: BoolArray) -> BoolArray:
    """2:1 multiplexer: output is *a* when ``s`` is 0, *b* when ``s`` is 1."""
    return np.where(s, b, a)


def f_aoi21(a: BoolArray, b: BoolArray, c: BoolArray) -> BoolArray:
    """AND-OR-INVERT: ``~((a & b) | c)``."""
    return ~((a & b) | c)


def f_oai21(a: BoolArray, b: BoolArray, c: BoolArray) -> BoolArray:
    """OR-AND-INVERT: ``~((a | b) & c)``."""
    return ~((a | b) & c)


# ---------------------------------------------------------------------------
# Packed (bit-sliced) variants
# ---------------------------------------------------------------------------
#
# The bit-sliced simulator backend packs 64 batch lanes into each uint64
# word and evaluates cells with bitwise ops on whole words.  Every pure
# ``& | ^ ~`` composition above already computes the right thing per bit
# lane when handed uint64 words; only :func:`f_mux2` is lane-unsafe,
# because ``np.where`` tests whole-element truthiness rather than
# selecting per bit.


def f_mux2_packed(a: BoolArray, b: BoolArray, s: BoolArray) -> BoolArray:
    """Bitwise 2:1 multiplexer: lane-wise ``b`` where ``s`` else ``a``."""
    return (b & s) | (a & ~s)


#: Functions with a dedicated word-wise replacement.
_PACKED_OVERRIDES: dict[CellFunction, CellFunction] = {
    f_mux2: f_mux2_packed,
}

#: Library functions proven safe to run unchanged on packed uint64 words.
_PACKED_SAFE: frozenset = frozenset(
    {
        f_buf, f_inv, f_and2, f_or2, f_nand2, f_nor2, f_xor2, f_xnor2,
        f_and3, f_or3, f_nand3, f_nor3, f_aoi21, f_oai21,
    }
)


def packed_function(fn: CellFunction) -> CellFunction | None:
    """Word-wise variant of a combinational cell function.

    Returns *fn* itself when it is a known lane-safe bitwise
    composition, its registered packed override otherwise, or ``None``
    for functions the packed backend cannot prove safe (the simulator
    then refuses to run that netlist packed rather than corrupt lanes).
    """
    override = _PACKED_OVERRIDES.get(fn)
    if override is not None:
        return override
    if fn in _PACKED_SAFE:
        return fn
    return None
