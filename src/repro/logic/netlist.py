"""Netlist data model.

A :class:`Netlist` is a flat graph of named :class:`Net` objects and
:class:`Instance` objects (standard cells with pin→net bindings).  The
clock is implicit: every sequential cell updates on the same global
rising edge, which matches the single-clock AES testchip of the paper.

Instances carry a free-form ``group`` label ("aes", "trojan1", ...)
used by Table I gate accounting and by the floorplanner to place each
subsystem in its own region, mirroring the paper's Figure 3 layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import NetlistError, SimulationError
from repro.logic.cells import CellKind, StdCell
from repro.logic.library import get_cell


@dataclass
class Net:
    """A single-bit signal wire.

    ``driver`` is the name of the driving instance, or ``"<input>"`` for
    primary inputs; ``loads`` lists ``(instance_name, pin_name)`` pairs.
    """

    name: str
    driver: str | None = None
    loads: list[tuple[str, str]] = field(default_factory=list)

    @property
    def fanout(self) -> int:
        """Number of input pins this net drives."""
        return len(self.loads)


@dataclass
class Instance:
    """A placed-by-name standard cell with pin→net bindings."""

    name: str
    cell: StdCell
    pins: dict[str, str]
    group: str = ""

    def input_nets(self) -> tuple[str, ...]:
        """Net names bound to the cell's input pins, in pin order."""
        return tuple(self.pins[p] for p in self.cell.inputs)

    @property
    def output_net(self) -> str:
        """Net name bound to the cell's output pin."""
        return self.pins[self.cell.output]


#: Pseudo-driver name recorded on primary-input nets.
INPUT_DRIVER = "<input>"


class Netlist:
    """A flat single-clock gate-level netlist."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.nets: dict[str, Net] = {}
        self.instances: dict[str, Instance] = {}
        self.inputs: list[str] = []
        self.outputs: list[str] = []
        #: Initial Q value of sequential instances after reset; flops not
        #: listed here reset to logic 0.
        self.ff_init: dict[str, bool] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_net(self, name: str) -> Net:
        """Create and return a new net.

        Raises
        ------
        NetlistError
            If a net of that name already exists.
        """
        if name in self.nets:
            raise NetlistError(f"net {name!r} already exists in {self.name!r}")
        net = Net(name)
        self.nets[name] = net
        return net

    def add_input(self, name: str) -> Net:
        """Create a primary-input net."""
        net = self.add_net(name)
        net.driver = INPUT_DRIVER
        self.inputs.append(name)
        return net

    def mark_output(self, name: str) -> None:
        """Flag an existing net as a primary output.

        Raises
        ------
        NetlistError
            If the net does not exist or is already an output.
        """
        if name not in self.nets:
            raise NetlistError(f"cannot mark unknown net {name!r} as output")
        if name in self.outputs:
            raise NetlistError(f"net {name!r} is already a primary output")
        self.outputs.append(name)

    def add_instance(
        self,
        name: str,
        cell_name: str,
        pins: dict[str, str],
        group: str = "",
    ) -> Instance:
        """Instantiate a library cell.

        All nets referenced in *pins* must already exist.  The output net
        must not have another driver.

        Raises
        ------
        NetlistError
            On duplicate instance names, unknown nets/pins, missing pins
            or multiply-driven nets.
        """
        if name in self.instances:
            raise NetlistError(f"instance {name!r} already exists")
        cell = get_cell(cell_name)
        expected = set(cell.inputs) | {cell.output}
        if set(pins) != expected:
            raise NetlistError(
                f"instance {name!r} of {cell_name}: pins {sorted(pins)} "
                f"do not match cell pins {sorted(expected)}"
            )
        for pin, net_name in pins.items():
            if net_name not in self.nets:
                raise NetlistError(
                    f"instance {name!r} pin {pin}: unknown net {net_name!r}"
                )
        out_net = self.nets[pins[cell.output]]
        if out_net.driver is not None:
            raise NetlistError(
                f"net {out_net.name!r} already driven by {out_net.driver!r}; "
                f"cannot also drive from {name!r}"
            )
        inst = Instance(name=name, cell=cell, pins=dict(pins), group=group)
        self.instances[name] = inst
        out_net.driver = name
        for pin in cell.inputs:
            self.nets[pins[pin]].loads.append((name, pin))
        return inst

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def iter_instances(self, group: str | None = None) -> Iterator[Instance]:
        """Iterate instances, optionally restricted to one group."""
        for inst in self.instances.values():
            if group is None or inst.group == group:
                yield inst

    def groups(self) -> list[str]:
        """Sorted list of distinct instance group labels."""
        return sorted({inst.group for inst in self.instances.values()})

    @property
    def num_instances(self) -> int:
        return len(self.instances)

    @property
    def num_nets(self) -> int:
        return len(self.nets)

    def sequential_instances(self) -> list[Instance]:
        """All flip-flop instances in insertion order."""
        return [i for i in self.instances.values() if i.cell.is_sequential]

    def combinational_instances(self) -> list[Instance]:
        """All combinational instances in insertion order."""
        return [
            i
            for i in self.instances.values()
            if i.cell.kind is CellKind.COMBINATIONAL
        ]

    # ------------------------------------------------------------------
    # Validation and levelisation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural sanity.

        Raises
        ------
        NetlistError
            If any net is undriven or any output is missing.
        """
        undriven = [n.name for n in self.nets.values() if n.driver is None]
        if undriven:
            shown = ", ".join(sorted(undriven)[:8])
            raise NetlistError(
                f"{len(undriven)} undriven net(s) in {self.name!r}: {shown}"
            )
        for out in self.outputs:
            if out not in self.nets:
                raise NetlistError(f"primary output {out!r} has no net")

    def levelize(self) -> dict[str, int]:
        """Assign a topological level to every *combinational* instance.

        Sources (primary inputs, flip-flop outputs, tie cells) sit at
        level 0; a combinational gate's level is one plus the maximum
        level of its input drivers.  The result drives both the
        vectorised simulator schedule and the switching-time bins of the
        power model.

        Raises
        ------
        SimulationError
            If the combinational logic contains a cycle.
        """
        level: dict[str, int] = {}
        comb = self.combinational_instances()
        # Kahn's algorithm over combinational instances only.
        indeg: dict[str, int] = {}
        dependants: dict[str, list[str]] = {i.name: [] for i in comb}
        for inst in comb:
            count = 0
            for net_name in inst.input_nets():
                drv = self.nets[net_name].driver
                if drv is not None and drv in self.instances:
                    drv_inst = self.instances[drv]
                    if drv_inst.cell.kind is CellKind.COMBINATIONAL:
                        dependants[drv].append(inst.name)
                        count += 1
            indeg[inst.name] = count
        ready = [name for name, d in indeg.items() if d == 0]
        for name in ready:
            level[name] = 0
        head = 0
        while head < len(ready):
            name = ready[head]
            head += 1
            inst = self.instances[name]
            base = 0
            for net_name in inst.input_nets():
                drv = self.nets[net_name].driver
                if drv in level:
                    base = max(base, level[drv] + 1)
            level[name] = base
            for nxt in dependants[name]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    ready.append(nxt)
        if len(level) != len(comb):
            stuck = sorted(set(indeg) - set(level))[:8]
            raise SimulationError(
                f"combinational loop in {self.name!r} involving: "
                + ", ".join(stuck)
            )
        return level

    # ------------------------------------------------------------------
    # Bulk helpers
    # ------------------------------------------------------------------
    def gate_count(self, groups: Iterable[str] | None = None) -> int:
        """Number of instances, optionally restricted to some groups."""
        if groups is None:
            return len(self.instances)
        wanted = set(groups)
        return sum(1 for i in self.instances.values() if i.group in wanted)

    def total_area(self, groups: Iterable[str] | None = None) -> float:
        """Sum of cell areas in m², optionally restricted to some groups."""
        wanted = None if groups is None else set(groups)
        return sum(
            i.cell.area
            for i in self.instances.values()
            if wanted is None or i.group in wanted
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Netlist({self.name!r}, instances={self.num_instances}, "
            f"nets={self.num_nets})"
        )
