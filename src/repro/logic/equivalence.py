"""Simulation-based equivalence checking.

A lightweight stand-in for formal combinational equivalence checking:
two netlists with the same primary-input/-output names are driven with
the same random vectors (plus directed corner vectors) and their
outputs compared cycle by cycle.  Not a proof — but with a few hundred
vectors it catches every bug the generators have ever produced, and it
is the tool the tests use to cross-validate independently-built
implementations (e.g. two ways of constructing the same S-box).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import NetlistError
from repro.logic.netlist import Netlist
from repro.logic.simulator import CompiledNetlist
from repro.rng import derive


@dataclass
class Mismatch:
    """One observed output divergence."""

    cycle: int
    output: str
    vector_index: int
    value_a: bool
    value_b: bool


@dataclass
class EquivalenceReport:
    """Outcome of a random-simulation equivalence run."""

    vectors: int
    cycles: int
    mismatches: list[Mismatch] = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        return not self.mismatches

    def format(self) -> str:
        if self.equivalent:
            return (
                f"equivalent over {self.vectors} vectors x "
                f"{self.cycles} cycles"
            )
        first = self.mismatches[0]
        return (
            f"NOT equivalent: {len(self.mismatches)} mismatches; first at "
            f"cycle {first.cycle}, output {first.output!r} "
            f"({first.value_a} vs {first.value_b})"
        )


def random_equivalence_check(
    a: Netlist,
    b: Netlist,
    n_vectors: int = 256,
    n_cycles: int = 4,
    seed: int = 0,
    max_mismatches: int = 16,
) -> EquivalenceReport:
    """Compare two netlists on random stimuli.

    Both netlists must expose identical primary-input and
    primary-output name sets.

    Raises
    ------
    NetlistError
        If the interfaces differ.
    """
    if set(a.inputs) != set(b.inputs):
        only_a = sorted(set(a.inputs) - set(b.inputs))[:4]
        only_b = sorted(set(b.inputs) - set(a.inputs))[:4]
        raise NetlistError(
            f"input mismatch: only-in-A {only_a}, only-in-B {only_b}"
        )
    if set(a.outputs) != set(b.outputs):
        raise NetlistError(
            f"output sets differ: {sorted(set(a.outputs) ^ set(b.outputs))[:6]}"
        )
    sim_a = CompiledNetlist(a)
    sim_b = CompiledNetlist(b)
    rng = derive(seed, "equivalence")

    # Random vectors plus the all-zeros / all-ones corners.
    stim = rng.integers(0, 2, size=(n_vectors, len(a.inputs))).astype(bool)
    if n_vectors >= 2:
        stim[0] = False
        stim[1] = True

    inputs = {
        name: stim[:, i] for i, name in enumerate(a.inputs)
    }
    state_a = sim_a.reset(batch=n_vectors, inputs=inputs)
    state_b = sim_b.reset(batch=n_vectors, inputs=inputs)

    report = EquivalenceReport(vectors=n_vectors, cycles=n_cycles)

    def compare(cycle: int) -> None:
        for out in a.outputs:
            va = sim_a.read(state_a, out)
            vb = sim_b.read(state_b, out)
            bad = np.nonzero(va != vb)[0]
            for idx in bad[: max_mismatches - len(report.mismatches)]:
                report.mismatches.append(
                    Mismatch(
                        cycle=cycle,
                        output=out,
                        vector_index=int(idx),
                        value_a=bool(va[idx]),
                        value_b=bool(vb[idx]),
                    )
                )

    compare(0)
    for cycle in range(1, n_cycles + 1):
        if len(report.mismatches) >= max_mismatches:
            break
        fresh = rng.integers(0, 2, size=(n_vectors, len(a.inputs))).astype(bool)
        step_inputs = {
            name: fresh[:, i] for i, name in enumerate(a.inputs)
        }
        sim_a.step(state_a, step_inputs)
        sim_b.step(state_b, step_inputs)
        compare(cycle)
    return report
