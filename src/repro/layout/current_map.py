"""Cell-position → power-grid current-path mapping.

For every placed cell, its switching current is assumed to flow from
the nearest pad edge down the nearest VDD stripe, along the row's VDD
rail to the cell, and back along the VSS rail and stripe.  Each
traversed tile of the :class:`~repro.layout.power_grid.PowerGrid`
receives a signed unit entry in a sparse ``(n_segments, n_cells)``
matrix; multiplying the per-segment EM coupling vector by this matrix
yields the single per-cell coupling weight that makes trace synthesis a
cheap reduction (see :mod:`repro.em.coupling`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.errors import LayoutError
from repro.layout.power_grid import PowerGrid


@dataclass
class CurrentMap:
    """Sparse signed mapping from cell currents to segment currents."""

    matrix: sparse.csr_matrix  # (n_segments, n_cells)
    grid: PowerGrid

    @property
    def n_cells(self) -> int:
        return self.matrix.shape[1]

    def cell_weights(self, segment_coupling: np.ndarray) -> np.ndarray:
        """Fold per-segment couplings into per-cell weights.

        ``segment_coupling`` has shape ``(n_segments,)`` (henries, from
        the Neumann solver); the result has shape ``(n_cells,)``.
        """
        coupling = np.asarray(segment_coupling, dtype=np.float64)
        if coupling.shape != (self.grid.n_segments,):
            raise LayoutError(
                f"coupling vector has shape {coupling.shape}, expected "
                f"({self.grid.n_segments},)"
            )
        return np.asarray(coupling @ self.matrix).ravel()


def _path_entries(
    grid: PowerGrid, x: float, y: float
) -> tuple[list[int], list[float]]:
    """Signed tile path for one cell at (x, y)."""
    rh_row = min(max(int(y / (grid.die_height / grid.n_rows)), 0), grid.n_rows - 1)
    kx = min(int(x / grid.tile_len), grid.n_tiles_x - 1)
    stripe = grid.nearest_stripe(x)
    ks = min(int(grid.stripe_xs[stripe] / grid.tile_len), grid.n_tiles_x - 1)
    ky = min(int(y / grid.tile_len), grid.n_tiles_y - 1)

    seg_ids: list[int] = []
    values: list[float] = []

    # Horizontal rail tiles between the stripe tap and the cell.  VDD
    # current flows stripe -> cell; VSS return flows cell -> stripe.
    if kx >= ks:
        rail_tiles = range(ks, kx + 1)
        sign = 1.0  # +x direction
    else:
        rail_tiles = range(kx, ks + 1)
        sign = -1.0
    for k in rail_tiles:
        seg_ids.append(grid.vdd_rail_tile(rh_row, k))
        values.append(sign)
        seg_ids.append(grid.vss_rail_tile(rh_row, k))
        values.append(-sign)

    # Vertical stripe tiles between the nearest ring edge and the row.
    from_bottom = y < 0.5 * grid.die_height
    if from_bottom:
        stripe_tiles = range(0, ky + 1)
        sign = 1.0  # +y direction (bottom ring feeding upward)
    else:
        stripe_tiles = range(ky, grid.n_tiles_y)
        sign = -1.0  # current flows downward from the top ring
    for k in stripe_tiles:
        seg_ids.append(grid.vdd_stripe_tile(stripe, k))
        values.append(sign)
        seg_ids.append(grid.vss_stripe_tile(stripe, k))
        values.append(-sign)

    # Ring tiles: VDD pads on the left edge feed rightward to the
    # stripe; VSS return continues rightward from the stripe to the
    # right-edge pads.  Both runs carry current in +x, so the global
    # path adds coherently across the whole die.
    if from_bottom:
        vdd_base, vss_base = grid.ring_vdd_bottom_base, grid.ring_vss_bottom_base
    else:
        vdd_base, vss_base = grid.ring_vdd_top_base, grid.ring_vss_top_base
    ring_frac = grid.ring_current_fraction
    for k in range(0, ks + 1):
        seg_ids.append(grid.ring_tile(vdd_base, k))
        values.append(ring_frac)
    for k in range(ks, grid.n_tiles_x):
        seg_ids.append(grid.ring_tile(vss_base, k))
        values.append(ring_frac)

    return seg_ids, values


def build_current_map(
    grid: PowerGrid,
    xs: np.ndarray,
    ys: np.ndarray,
) -> CurrentMap:
    """Build the sparse current map for cells at ``(xs, ys)``.

    The column order of the matrix matches the order of *xs*/*ys*
    (i.e. the compiled netlist's instance order).
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.shape != ys.shape or xs.ndim != 1:
        raise LayoutError(
            f"xs {xs.shape} and ys {ys.shape} must be equal-length 1-D arrays"
        )
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    for c, (x, y) in enumerate(zip(xs, ys)):
        if not (0.0 <= x <= grid.die_width and 0.0 <= y <= grid.die_height):
            raise LayoutError(
                f"cell {c} at ({x:.2e}, {y:.2e}) lies outside the die"
            )
        seg_ids, values = _path_entries(grid, x, y)
        rows.extend(seg_ids)
        cols.extend([c] * len(seg_ids))
        vals.extend(values)
    matrix = sparse.csr_matrix(
        (vals, (rows, cols)), shape=(grid.n_segments, xs.size)
    )
    return CurrentMap(matrix=matrix, grid=grid)


def position_coupling(
    grid: PowerGrid,
    segment_coupling: np.ndarray,
    x: float,
    y: float,
) -> float:
    """EM coupling weight for a current source at an arbitrary (x, y).

    Used for analog taps, which radiate from their Trojan's region
    centroid rather than from a placed library cell.
    """
    seg_ids, values = _path_entries(grid, x, y)
    coupling = np.asarray(segment_coupling, dtype=np.float64)
    return float(sum(coupling[s] * v for s, v in zip(seg_ids, values)))
