"""Power-delivery network geometry.

Per row, a VDD rail along its top edge and a VSS rail along its bottom
edge (M1); vertical VDD/VSS stripe pairs (M5) tap the rails at a fixed
pitch and connect to the pad ring at the top and bottom die edges.  All
wires are discretised into fixed-length tiles — the finite straight
segments the Biot–Savart solver consumes.

The tight VDD/VSS spacing matters physically: each cell's draw and
return currents form a small loop, so the far field mostly cancels
while the near field (where the on-chip coil sits, a few µm above)
does not.  That asymmetry is the root cause of the paper's on-chip
versus external-probe SNR gap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import LayoutError
from repro.layout.floorplan import Floorplan
from repro.units import UM


@dataclass
class PowerGrid:
    """Discretised power-grid segments plus the indexing the current
    map needs to translate a cell position into a current path."""

    seg_start: np.ndarray  # (N, 3)
    seg_end: np.ndarray  # (N, 3)
    seg_width: np.ndarray  # (N,)
    die_width: float
    die_height: float
    tile_len: float
    n_rows: int
    n_tiles_x: int
    n_tiles_y: int
    stripe_xs: np.ndarray  # (S,) stripe-pair centre x positions
    # Segment-id block offsets, in order: VDD rails, VSS rails, VDD
    # stripes, VSS stripes, then the four ring runs (VDD top/bottom,
    # VSS top/bottom).
    vdd_rail_base: int
    vss_rail_base: int
    vdd_stripe_base: int
    vss_stripe_base: int
    ring_vdd_top_base: int = 0
    ring_vdd_bottom_base: int = 0
    ring_vss_top_base: int = 0
    ring_vss_bottom_base: int = 0
    #: Fraction of a cell's switching current that reaches the ring.
    #: On-chip and package decoupling capacitance supplies most of the
    #: nanosecond-scale charge locally; only this residue flows through
    #: the pads.  Without it the die-wide ring loop would dominate both
    #: receivers and erase the on-chip sensor's locality advantage.
    ring_current_fraction: float = 0.0

    @property
    def n_segments(self) -> int:
        return self.seg_start.shape[0]

    def vdd_rail_tile(self, row: int, kx: int) -> int:
        """Segment id of VDD rail tile *kx* in *row*."""
        return self.vdd_rail_base + row * self.n_tiles_x + kx

    def vss_rail_tile(self, row: int, kx: int) -> int:
        return self.vss_rail_base + row * self.n_tiles_x + kx

    def vdd_stripe_tile(self, stripe: int, ky: int) -> int:
        return self.vdd_stripe_base + stripe * self.n_tiles_y + ky

    def vss_stripe_tile(self, stripe: int, ky: int) -> int:
        return self.vss_stripe_base + stripe * self.n_tiles_y + ky

    def ring_tile(self, base: int, kx: int) -> int:
        """Segment id of ring tile *kx* within the run starting at *base*."""
        return base + kx

    def nearest_stripe(self, x: float) -> int:
        """Index of the stripe pair closest to *x*."""
        return int(np.argmin(np.abs(self.stripe_xs - x)))


def build_power_grid(
    floorplan: Floorplan,
    tile_len: float = 25 * UM,
    stripe_pitch: float = 150 * UM,
    rail_width: float = 0.8 * UM,
    stripe_width: float = 3.0 * UM,
    rail_inset: float = 0.5 * UM,
    stripe_gap: float = 3.0 * UM,
    ring_current_fraction: float = 0.0,
) -> PowerGrid:
    """Construct the tiled rail/stripe network for *floorplan*.

    ``rail_inset`` offsets the VDD (VSS) rail below (above) the row's
    top (bottom) edge so adjacent rows' rails do not coincide;
    ``stripe_gap`` is the VDD-to-VSS spacing within a stripe pair.
    """
    if tile_len <= 0:
        raise LayoutError(f"tile_len must be positive, got {tile_len}")
    tech = floorplan.tech
    die = floorplan.die
    w, h = die.width, die.height
    n_rows = floorplan.n_rows
    n_tiles_x = max(1, math.ceil(w / tile_len))
    n_tiles_y = max(1, math.ceil(h / tile_len))
    z_rail = tech.layer(tech.rail_layer).z
    z_stripe = tech.layer(tech.stripe_layer).z

    n_stripes = max(2, int(round(w / stripe_pitch)) + 1)
    stripe_xs = np.linspace(0.5 * stripe_pitch, w - 0.5 * stripe_pitch, n_stripes)
    if n_stripes == 2:
        stripe_xs = np.array([0.25 * w, 0.75 * w])

    starts: list[tuple[float, float, float]] = []
    ends: list[tuple[float, float, float]] = []
    widths: list[float] = []

    def add_h_rails(y: float) -> None:
        for k in range(n_tiles_x):
            x0 = min(k * tile_len, w)
            x1 = min((k + 1) * tile_len, w)
            starts.append((x0, y, z_rail))
            ends.append((x1, y, z_rail))
            widths.append(rail_width)

    rh = tech.row_height
    vdd_rail_base = 0
    for r in range(n_rows):
        add_h_rails((r + 1) * rh - rail_inset)
    vss_rail_base = len(starts)
    for r in range(n_rows):
        add_h_rails(r * rh + rail_inset)

    def add_v_stripes(x: float) -> None:
        for k in range(n_tiles_y):
            y0 = min(k * tile_len, h)
            y1 = min((k + 1) * tile_len, h)
            starts.append((x, y0, z_stripe))
            ends.append((x, y1, z_stripe))
            widths.append(stripe_width)

    vdd_stripe_base = len(starts)
    for xs in stripe_xs:
        add_v_stripes(xs - 0.5 * stripe_gap)
    vss_stripe_base = len(starts)
    for xs in stripe_xs:
        add_v_stripes(xs + 0.5 * stripe_gap)

    # Power ring along the top and bottom die edges.  VDD pads sit on
    # the left edge, VSS pads on the right (as on the paper's Fig. 3
    # die), so draw and return ring currents flow the *same* direction
    # across the die — the global supply path that carries the total
    # chip current without VDD/VSS near-field cancellation.
    ring_width = 20 * UM
    ring_inset_y = 6 * UM

    def add_ring_run(y: float) -> None:
        for k in range(n_tiles_x):
            x0 = min(k * tile_len, w)
            x1 = min((k + 1) * tile_len, w)
            starts.append((x0, y, z_stripe))
            ends.append((x1, y, z_stripe))
            widths.append(ring_width)

    ring_vdd_top_base = len(starts)
    add_ring_run(h)
    ring_vdd_bottom_base = len(starts)
    add_ring_run(0.0)
    ring_vss_top_base = len(starts)
    add_ring_run(h - ring_inset_y)
    ring_vss_bottom_base = len(starts)
    add_ring_run(ring_inset_y)

    return PowerGrid(
        seg_start=np.array(starts),
        seg_end=np.array(ends),
        seg_width=np.array(widths),
        die_width=w,
        die_height=h,
        tile_len=tile_len,
        n_rows=n_rows,
        n_tiles_x=n_tiles_x,
        n_tiles_y=n_tiles_y,
        stripe_xs=stripe_xs,
        vdd_rail_base=vdd_rail_base,
        vss_rail_base=vss_rail_base,
        vdd_stripe_base=vdd_stripe_base,
        vss_stripe_base=vss_stripe_base,
        ring_vdd_top_base=ring_vdd_top_base,
        ring_vdd_bottom_base=ring_vdd_bottom_base,
        ring_vss_top_base=ring_vss_top_base,
        ring_vss_bottom_base=ring_vss_bottom_base,
        ring_current_fraction=ring_current_fraction,
    )
