"""180 nm technology description.

Six metal layers, 9-track standard-cell rows, 1.8 V supply.  The paper
implements the AES and Trojans on M1–M5 and reserves M6, the topmost
layer, exclusively for the on-chip EM sensor coil ("the only
modifications made to the original design is to avoid any placement and
routing on the top metal layer").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TechnologyError
from repro.logic.library import ROW_HEIGHT, SITE_WIDTH, VDD
from repro.units import OHM, UM


@dataclass(frozen=True)
class MetalLayer:
    """One routing layer of the stack."""

    name: str
    #: Height of the layer midplane above the transistor plane [m].
    z: float
    #: Minimum legal trace width [m].
    min_width: float
    #: Sheet resistance [ohm/square].
    sheet_res: float

    def wire_resistance(self, length: float, width: float) -> float:
        """Resistance of a trace of given *length* and *width*.

        Raises
        ------
        TechnologyError
            If *width* violates the layer's minimum width rule.
        """
        if width < self.min_width:
            raise TechnologyError(
                f"{self.name}: width {width:.2e} below minimum "
                f"{self.min_width:.2e}"
            )
        if length < 0:
            raise TechnologyError(f"negative wire length {length}")
        return self.sheet_res * length / width


@dataclass(frozen=True)
class Technology:
    """Process data consumed by floorplanning, routing and EM models."""

    name: str
    layers: dict[str, MetalLayer]
    row_height: float = ROW_HEIGHT
    site_width: float = SITE_WIDTH
    vdd: float = VDD
    #: Layer carrying standard-cell power rails.
    rail_layer: str = "M1"
    #: Layer carrying vertical power stripes and the power ring.
    stripe_layer: str = "M5"
    #: Topmost layer, reserved for the EM sensor coil.
    sensor_layer: str = "M6"
    #: Per-unit-length wire capacitance estimate [F/m] for loads.
    wire_cap_per_m: float = 0.16e-9  # 0.16 fF/µm

    def layer(self, name: str) -> MetalLayer:
        """Look up a metal layer by name.

        Raises
        ------
        TechnologyError
            If the layer does not exist.
        """
        try:
            return self.layers[name]
        except KeyError:
            known = ", ".join(sorted(self.layers))
            raise TechnologyError(
                f"unknown layer {name!r}; technology has: {known}"
            ) from None


def make_tech180() -> Technology:
    """The default generic 0.18 µm 1P6M technology."""
    layers = {
        "M1": MetalLayer("M1", z=0.8 * UM, min_width=0.28 * UM, sheet_res=0.08 * OHM),
        "M2": MetalLayer("M2", z=1.6 * UM, min_width=0.28 * UM, sheet_res=0.08 * OHM),
        "M3": MetalLayer("M3", z=2.4 * UM, min_width=0.28 * UM, sheet_res=0.08 * OHM),
        "M4": MetalLayer("M4", z=3.2 * UM, min_width=0.28 * UM, sheet_res=0.08 * OHM),
        "M5": MetalLayer("M5", z=4.0 * UM, min_width=0.44 * UM, sheet_res=0.04 * OHM),
        "M6": MetalLayer("M6", z=5.0 * UM, min_width=0.44 * UM, sheet_res=0.008 * OHM),
    }
    return Technology(name="generic180", layers=layers)


#: Module-level default instance shared across the package.
TECH180 = make_tech180()
