"""Row-based standard-cell placement.

Cells of each group fill their floorplan region row by row, left to
right, in a deterministically shuffled order (construction order would
otherwise put whole datapath slices in single rows, which is neither
realistic nor kind to the power-grid current spread).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import LayoutError
from repro.layout.floorplan import Floorplan
from repro.logic.netlist import Netlist
from repro.rng import derive


@dataclass
class Placement:
    """Per-instance cell locations (cell centres, metres)."""

    positions: dict[str, tuple[float, float]]
    floorplan: Floorplan

    def arrays_for(self, instance_names: list[str]) -> tuple[np.ndarray, np.ndarray]:
        """(x, y) arrays aligned with *instance_names*.

        Raises
        ------
        LayoutError
            If any instance is unplaced.
        """
        try:
            xs = np.array([self.positions[n][0] for n in instance_names])
            ys = np.array([self.positions[n][1] for n in instance_names])
        except KeyError as exc:
            raise LayoutError(f"instance {exc.args[0]!r} is not placed") from None
        return xs, ys

    def group_centroid(self, netlist: Netlist, group: str) -> tuple[float, float]:
        """Mean position of a group's cells."""
        pts = [
            self.positions[inst.name]
            for inst in netlist.iter_instances(group)
            if inst.name in self.positions
        ]
        if not pts:
            raise LayoutError(f"group {group!r} has no placed cells")
        arr = np.asarray(pts)
        return float(arr[:, 0].mean()), float(arr[:, 1].mean())


def place_netlist(
    netlist: Netlist,
    floorplan: Floorplan,
    seed: int = 0,
) -> Placement:
    """Place every instance of *netlist* inside its group's region.

    Cells are shuffled deterministically (seeded by *seed* and the
    group name) and packed into rows; a region overflowing its capacity
    raises :class:`~repro.errors.LayoutError`, which signals that the
    floorplan utilisation was set too high.
    """
    tech = floorplan.tech
    positions: dict[str, tuple[float, float]] = {}
    by_group: dict[str, list] = {}
    for inst in netlist.instances.values():
        by_group.setdefault(inst.group, []).append(inst)

    for group, insts in by_group.items():
        region = floorplan.region(group).rect
        rng = derive(seed, f"placement/{group}")
        order = np.arange(len(insts))
        rng.shuffle(order)
        n_rows = max(1, int(region.height / tech.row_height))
        row = 0
        x_cursor = region.x0
        for idx in order:
            inst = insts[idx]
            width = inst.cell.area / tech.row_height
            if x_cursor + width > region.x1 + 1e-12:
                row += 1
                x_cursor = region.x0
                if row >= n_rows:
                    raise LayoutError(
                        f"region {group!r} overflows after "
                        f"{len(positions)} cells; increase its area"
                    )
            y = region.y0 + (row + 0.5) * tech.row_height
            positions[inst.name] = (x_cursor + 0.5 * width, y)
            x_cursor += width
    return Placement(positions=positions, floorplan=floorplan)
