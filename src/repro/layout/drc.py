"""Design-rule checking for the generated physical design.

A pragmatic DRC pass over the pieces this library generates: metal
widths against each layer's minimum, the sensor spiral's turn-to-turn
spacing, coil containment within the die, region containment and
pairwise region overlap in the floorplan, and placement rows inside
their regions.  The paper's only physical constraint — "the width of
the coils is set not to violate the design rules of the minimum width
of the wires" — is literally one of these checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import TYPE_CHECKING

import numpy as np

from repro.layout.floorplan import Floorplan
from repro.layout.power_grid import PowerGrid
from repro.layout.technology import Technology

if TYPE_CHECKING:  # avoids a layout <-> em import cycle at runtime
    from repro.em.sensor import OnChipSensor


@dataclass
class DrcViolation:
    """One design-rule violation."""

    rule: str
    detail: str


@dataclass
class DrcReport:
    """Outcome of a DRC run."""

    violations: list[DrcViolation] = field(default_factory=list)
    checks_run: int = 0

    @property
    def clean(self) -> bool:
        return not self.violations

    def add(self, rule: str, detail: str) -> None:
        self.violations.append(DrcViolation(rule=rule, detail=detail))

    def format(self) -> str:
        if self.clean:
            return f"DRC clean ({self.checks_run} checks)"
        lines = [f"DRC: {len(self.violations)} violation(s):"]
        lines += [f"  [{v.rule}] {v.detail}" for v in self.violations[:20]]
        return "\n".join(lines)


def check_power_grid(
    grid: PowerGrid, tech: Technology, report: DrcReport
) -> None:
    """Metal widths of every grid segment against layer minimums."""
    z_by_layer = {layer.z: layer for layer in tech.layers.values()}
    for z, width, idx in zip(
        grid.seg_start[:, 2], grid.seg_width, range(grid.n_segments)
    ):
        layer = z_by_layer.get(float(z))
        report.checks_run += 1
        if layer is None:
            report.add("grid.layer", f"segment {idx} at unknown z={z:.2e}")
        elif width < layer.min_width:
            report.add(
                "grid.min-width",
                f"segment {idx} width {width:.2e} < {layer.name} minimum "
                f"{layer.min_width:.2e}",
            )


def check_sensor(
    sensor: "OnChipSensor",
    floorplan: Floorplan,
    tech: Technology,
    report: DrcReport,
) -> None:
    """Sensor coil: width, turn spacing, containment, layer exclusivity."""
    layer = tech.layer(tech.sensor_layer)
    report.checks_run += 1
    if sensor.trace_width < layer.min_width:
        report.add(
            "sensor.min-width",
            f"coil width {sensor.trace_width:.2e} < {layer.name} minimum",
        )
    report.checks_run += 1
    gap = sensor.pitch - sensor.trace_width
    if gap < layer.min_width:
        report.add(
            "sensor.spacing",
            f"turn-to-turn gap {gap:.2e} below minimum spacing "
            f"{layer.min_width:.2e}",
        )
    report.checks_run += 1
    die = floorplan.die
    pts = sensor.polyline
    margin = sensor.trace_width / 2
    if (
        pts[:, 0].min() < die.x0 + margin - 1e-12
        or pts[:, 0].max() > die.x1 - margin + 1e-12
        or pts[:, 1].min() < die.y0 + margin - 1e-12
        or pts[:, 1].max() > die.y1 - margin + 1e-12
    ):
        report.add("sensor.containment", "coil extends beyond the die edge")
    report.checks_run += 1
    if not np.allclose(pts[:, 2], layer.z):
        report.add("sensor.layer", "coil leaves the reserved top layer")


def check_floorplan(floorplan: Floorplan, report: DrcReport) -> None:
    """Regions inside the die and pairwise non-overlapping."""
    die = floorplan.die
    regions = list(floorplan.regions.values())
    for region in regions:
        report.checks_run += 1
        r = region.rect
        if (
            r.x0 < die.x0 - 1e-12
            or r.y0 < die.y0 - 1e-12
            or r.x1 > die.x1 + 1e-12
            or r.y1 > die.y1 + 1e-12
        ):
            report.add(
                "floorplan.containment",
                f"region {region.group!r} leaves the die",
            )
    for i, a in enumerate(regions):
        for b in regions[i + 1 :]:
            report.checks_run += 1
            ox = min(a.rect.x1, b.rect.x1) - max(a.rect.x0, b.rect.x0)
            oy = min(a.rect.y1, b.rect.y1) - max(a.rect.y0, b.rect.y0)
            if ox > 1e-12 and oy > 1e-12:
                report.add(
                    "floorplan.overlap",
                    f"regions {a.group!r} and {b.group!r} overlap",
                )


def check_top_layer_reserved(
    grid: PowerGrid, tech: Technology, report: DrcReport
) -> None:
    """The paper's constraint: nothing but the sensor on the top layer."""
    z_top = tech.layer(tech.sensor_layer).z
    report.checks_run += 1
    if (grid.seg_start[:, 2] >= z_top - 1e-12).any():
        report.add(
            "top-layer.reserved",
            "power-grid segments found on the sensor layer",
        )


def run_drc(chip) -> DrcReport:
    """Full DRC over an assembled :class:`~repro.chip.chip.Chip`."""
    report = DrcReport()
    check_power_grid(chip.grid, chip.tech, report)
    check_sensor(chip.sensor, chip.floorplan, chip.tech, report)
    check_floorplan(chip.floorplan, report)
    check_top_layer_reserved(chip.grid, chip.tech, report)
    return report
