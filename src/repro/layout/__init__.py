"""Physical-design substrate: die geometry, placement, power delivery.

Turns the flat netlist into physics: a 180 nm technology description
(:mod:`~repro.layout.technology`), a Figure 3-style floorplan with the
AES on one side and the four Trojans plus the A2 cell in their own
regions (:mod:`~repro.layout.floorplan`), row-based placement
(:mod:`~repro.layout.placement`), and a rail/stripe power grid whose
metal segments carry every cell's switching current
(:mod:`~repro.layout.power_grid`, :mod:`~repro.layout.current_map`).
Those segments are the Biot–Savart sources of the EM model.
"""

from repro.layout.geometry import (
    Rect,
    circular_loop,
    polyline_length,
    rectangular_spiral,
    segments_from_polyline,
)
from repro.layout.technology import MetalLayer, Technology, make_tech180
from repro.layout.floorplan import Floorplan, Region, plan_floorplan
from repro.layout.placement import Placement, place_netlist
from repro.layout.power_grid import PowerGrid, build_power_grid
from repro.layout.current_map import CurrentMap, build_current_map
from repro.layout.drc import DrcReport, run_drc

__all__ = [
    "Rect",
    "circular_loop",
    "polyline_length",
    "rectangular_spiral",
    "segments_from_polyline",
    "MetalLayer",
    "Technology",
    "make_tech180",
    "Floorplan",
    "Region",
    "plan_floorplan",
    "Placement",
    "place_netlist",
    "PowerGrid",
    "build_power_grid",
    "CurrentMap",
    "build_current_map",
    "DrcReport",
    "run_drc",
]
