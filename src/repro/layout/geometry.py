"""Planar/3-D geometry primitives for die layout and coil design.

Coordinates are metres.  The die sits in the z = 0 plane with metal
layers at their stack heights; polylines are ``(N, 3)`` float arrays of
consecutive vertices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import LayoutError


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle ``[x0, x1] x [y0, y1]``."""

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if self.x1 < self.x0 or self.y1 < self.y0:
            raise LayoutError(
                f"degenerate rectangle ({self.x0}, {self.y0}, {self.x1}, {self.y1})"
            )

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        return (0.5 * (self.x0 + self.x1), 0.5 * (self.y0 + self.y1))

    def contains(self, x: float, y: float, tol: float = 0.0) -> bool:
        """True when point (x, y) lies inside (inclusive, with *tol* slack)."""
        return (
            self.x0 - tol <= x <= self.x1 + tol
            and self.y0 - tol <= y <= self.y1 + tol
        )

    def shrunk(self, margin: float) -> "Rect":
        """A copy inset by *margin* on all sides."""
        return Rect(
            self.x0 + margin, self.y0 + margin, self.x1 - margin, self.y1 - margin
        )


def polyline_length(points: np.ndarray) -> float:
    """Total length of a polyline given as an ``(N, 3)`` vertex array."""
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 3 or pts.shape[0] < 2:
        raise LayoutError(f"polyline must be (N>=2, 3), got shape {pts.shape}")
    return float(np.linalg.norm(np.diff(pts, axis=0), axis=1).sum())


def segments_from_polyline(points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split a polyline into straight segments.

    Returns ``(starts, ends)``, each of shape ``(N-1, 3)``.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 3 or pts.shape[0] < 2:
        raise LayoutError(f"polyline must be (N>=2, 3), got shape {pts.shape}")
    return pts[:-1].copy(), pts[1:].copy()


def rectangular_spiral(
    center_x: float,
    center_y: float,
    z: float,
    pitch: float,
    turns: int,
) -> np.ndarray:
    """One-way rectangular spiral from the centre outward (paper Fig. 2b).

    "The proposed on-chip EM sensor is designed as a coil starting from
    the center, extending to the corner and covering the entire
    circuit."  Legs alternate east/north/west/south and grow by one
    *pitch* every half turn, so after *turns* turns the outermost leg
    has a half-extent of ``turns * pitch``.

    Returns an ``(N, 3)`` vertex array.
    """
    if pitch <= 0:
        raise LayoutError(f"spiral pitch must be positive, got {pitch}")
    if turns < 1:
        raise LayoutError(f"spiral needs at least 1 turn, got {turns}")
    pts = [(center_x, center_y, z)]
    x, y = center_x, center_y
    directions = [(1, 0), (0, 1), (-1, 0), (0, -1)]
    leg = 0
    # Leg lengths follow 1, 1, 2, 2, 3, 3, ... times the pitch.
    for k in range(1, 2 * turns + 1):
        length = k * pitch
        for _ in range(2):
            dx, dy = directions[leg % 4]
            x += dx * length
            y += dy * length
            pts.append((x, y, z))
            leg += 1
    return np.array(pts, dtype=float)


def circular_loop(
    center_x: float,
    center_y: float,
    z: float,
    radius: float,
    n_sides: int = 24,
) -> np.ndarray:
    """A closed circular loop approximated by an *n_sides*-gon.

    Returns an ``(n_sides + 1, 3)`` vertex array whose last point equals
    the first.
    """
    if radius <= 0:
        raise LayoutError(f"loop radius must be positive, got {radius}")
    if n_sides < 3:
        raise LayoutError(f"loop needs at least 3 sides, got {n_sides}")
    angles = np.linspace(0.0, 2.0 * math.pi, n_sides + 1)
    pts = np.stack(
        [
            center_x + radius * np.cos(angles),
            center_y + radius * np.sin(angles),
            np.full_like(angles, z),
        ],
        axis=1,
    )
    pts[-1] = pts[0]
    return pts


def enclosed_area(points: np.ndarray) -> float:
    """Signed shoelace area of a polyline projected onto the XY plane.

    The polyline is treated as closed (last vertex joined to the first).
    Used for coil effective-area estimates.
    """
    pts = np.asarray(points, dtype=float)
    x, y = pts[:, 0], pts[:, 1]
    return 0.5 * float(np.dot(x, np.roll(y, -1)) - np.dot(y, np.roll(x, -1)))
