"""Floorplanning — paper Figure 3.

The die is square; the AES occupies a tall region on the left and the
four digital Trojans plus the A2 cell stack in a column on the right,
each in its own placement region, mirroring the fabricated chip's
layout.  Region widths/heights are proportional to each group's cell
area divided by the target row utilisation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import LayoutError
from repro.layout.geometry import Rect
from repro.layout.technology import Technology
from repro.logic.netlist import Netlist


@dataclass(frozen=True)
class Region:
    """A named placement region of the floorplan."""

    group: str
    rect: Rect


@dataclass
class Floorplan:
    """Die outline plus one placement region per instance group."""

    die: Rect
    regions: dict[str, Region]
    utilization: float
    tech: Technology

    @property
    def n_rows(self) -> int:
        """Number of standard-cell rows spanning the die."""
        return int(self.die.height / self.tech.row_height)

    def region(self, group: str) -> Region:
        """Region of *group*.

        Raises
        ------
        LayoutError
            If the group has no region.
        """
        try:
            return self.regions[group]
        except KeyError:
            known = ", ".join(sorted(self.regions))
            raise LayoutError(
                f"no region for group {group!r}; floorplan has: {known}"
            ) from None

    def summary(self) -> str:
        """Human-readable floorplan report (used by the Fig. 3 bench)."""
        um = 1e6
        lines = [
            f"die: {self.die.width * um:.0f} x {self.die.height * um:.0f} um, "
            f"{self.n_rows} rows, utilization {self.utilization:.2f}"
        ]
        for name in sorted(self.regions):
            r = self.regions[name].rect
            lines.append(
                f"  {name:<10} ({r.x0 * um:7.1f}, {r.y0 * um:7.1f}) -> "
                f"({r.x1 * um:7.1f}, {r.y1 * um:7.1f}) um"
            )
        return "\n".join(lines)


#: Default left-to-right split: AES region vs Trojan column (Fig. 3).
DEFAULT_MAIN_GROUP = "aes"


def plan_floorplan(
    netlist: Netlist,
    tech: Technology,
    utilization: float = 0.70,
    main_group: str = DEFAULT_MAIN_GROUP,
    column_order: list[str] | None = None,
) -> Floorplan:
    """Compute a Figure 3-style floorplan for *netlist*.

    Parameters
    ----------
    netlist:
        The die netlist; every instance group present gets a region.
    tech:
        Technology (row height, site width).
    utilization:
        Target placement density within each region, in (0, 1].
    main_group:
        The group occupying the left block (the AES).
    column_order:
        Top-to-bottom order of the right-column groups; defaults to the
        remaining groups sorted by name (trojan1..4 then a2).
    """
    if not 0.0 < utilization <= 1.0:
        raise LayoutError(f"utilization must be in (0, 1], got {utilization}")
    areas: dict[str, float] = {}
    for inst in netlist.instances.values():
        areas[inst.group] = areas.get(inst.group, 0.0) + inst.cell.area
    if main_group not in areas:
        raise LayoutError(f"netlist has no instances in group {main_group!r}")

    total_area = sum(areas.values()) / utilization
    die_side = math.sqrt(total_area)
    # Snap to whole rows and sites.
    n_rows = max(4, math.ceil(die_side / tech.row_height))
    die_h = n_rows * tech.row_height
    die_w = math.ceil(total_area / die_h / tech.site_width) * tech.site_width
    die = Rect(0.0, 0.0, die_w, die_h)

    side_groups = [g for g in sorted(areas) if g != main_group]
    if column_order is not None:
        missing = set(side_groups) - set(column_order)
        if missing:
            raise LayoutError(f"column_order misses groups: {sorted(missing)}")
        side_groups = [g for g in column_order if g in areas]

    regions: dict[str, Region] = {}
    if not side_groups:
        regions[main_group] = Region(main_group, die)
        return Floorplan(die, regions, utilization, tech)

    side_area = sum(areas[g] for g in side_groups) / utilization
    column_w = max(
        10 * tech.site_width,
        math.ceil(side_area / die_h / tech.site_width) * tech.site_width,
    )
    main_w = die_w - column_w
    if main_w <= 0:
        raise LayoutError(
            "Trojan column consumes the whole die; lower utilization or "
            "shrink the Trojans"
        )
    regions[main_group] = Region(main_group, Rect(0.0, 0.0, main_w, die_h))

    # Stack the side groups top-to-bottom with heights snapped to rows
    # and proportional to their area.
    y_top = die_h
    for i, group in enumerate(side_groups):
        frac = areas[group] / sum(areas[g] for g in side_groups)
        rows = max(1, round(frac * n_rows))
        height = rows * tech.row_height
        y0 = max(0.0, y_top - height)
        if i == len(side_groups) - 1:
            y0 = 0.0  # last region absorbs rounding slack
        regions[group] = Region(group, Rect(main_w, y0, die_w, y_top))
        y_top = y0
    return Floorplan(die, regions, utilization, tech)
